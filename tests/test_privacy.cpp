#include <gtest/gtest.h>

#include <cmath>

#include "privacy/dp_sgd.h"
#include "privacy/rdp_accountant.h"

namespace memcom {
namespace {

Param make_param(Shape shape) { return Param("p", Tensor(shape)); }

TEST(DpSgd, ClipsLargeExampleGradients) {
  Param p = make_param({4});
  DpSgdAggregator agg(/*clip_norm=*/1.0, /*noise=*/0.0, Rng(171));
  agg.begin_batch({&p});
  p.grad = Tensor::from_vector({4}, {3.0f, 0.0f, 4.0f, 0.0f});  // norm 5
  agg.accumulate_example({&p});
  EXPECT_NEAR(agg.last_example_norm(), 5.0, 1e-5);
  p.zero_grad();
  agg.finalize_into_grads({&p});
  // Clipped to norm 1: (0.6, 0, 0.8, 0), one example so mean = itself.
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad[2], 0.8f, 1e-5f);
  EXPECT_NEAR(p.grad.l2_norm(), 1.0f, 1e-5f);
}

TEST(DpSgd, SmallGradientsPassThrough) {
  Param p = make_param({2});
  DpSgdAggregator agg(10.0, 0.0, Rng(172));
  agg.begin_batch({&p});
  p.grad = Tensor::from_vector({2}, {0.3f, -0.4f});  // norm 0.5 < 10
  agg.accumulate_example({&p});
  p.zero_grad();
  agg.finalize_into_grads({&p});
  EXPECT_NEAR(p.grad[0], 0.3f, 1e-6f);
  EXPECT_NEAR(p.grad[1], -0.4f, 1e-6f);
}

TEST(DpSgd, AveragesOverExamples) {
  Param p = make_param({1});
  DpSgdAggregator agg(100.0, 0.0, Rng(173));
  agg.begin_batch({&p});
  for (const float g : {1.0f, 2.0f, 3.0f}) {
    p.grad = Tensor::from_vector({1}, {g});
    agg.accumulate_example({&p});
    p.zero_grad();
  }
  EXPECT_EQ(agg.example_count(), 3);
  agg.finalize_into_grads({&p});
  EXPECT_NEAR(p.grad[0], 2.0f, 1e-6f);
}

TEST(DpSgd, ZeroNoiseIsDeterministic) {
  Param a = make_param({8});
  Param b = make_param({8});
  DpSgdAggregator agg_a(1.0, 0.0, Rng(174));
  DpSgdAggregator agg_b(1.0, 0.0, Rng(999));  // different rng, no noise
  for (auto* pair : {&a, &b}) {
    (void)pair;
  }
  agg_a.begin_batch({&a});
  agg_b.begin_batch({&b});
  Rng g(175);
  const Tensor grad = Tensor::randn({8}, g);
  a.grad = grad;
  b.grad = grad;
  agg_a.accumulate_example({&a});
  agg_b.accumulate_example({&b});
  a.zero_grad();
  b.zero_grad();
  agg_a.finalize_into_grads({&a});
  agg_b.finalize_into_grads({&b});
  EXPECT_TRUE(a.grad.equals(b.grad));
}

TEST(DpSgd, NoiseScalesWithMultiplier) {
  // With zero example gradients, the finalized grad is pure noise with
  // stddev = noise_multiplier * clip / batch.
  const auto noise_level = [](double multiplier) {
    Param p = make_param({4096});
    DpSgdAggregator agg(2.0, multiplier, Rng(176));
    agg.begin_batch({&p});
    p.grad.zero();
    agg.accumulate_example({&p});
    agg.finalize_into_grads({&p});
    double sq = 0.0;
    for (Index i = 0; i < 4096; ++i) {
      sq += static_cast<double>(p.grad[i]) * p.grad[i];
    }
    return std::sqrt(sq / 4096.0);
  };
  EXPECT_NEAR(noise_level(1.0), 2.0, 0.1);   // sigma*clip/1
  EXPECT_NEAR(noise_level(0.5), 1.0, 0.05);
  EXPECT_NEAR(noise_level(0.0), 0.0, 1e-9);
}

TEST(DpSgd, NoisyFinalizeDisablesSparseFastPath) {
  Param p = make_param({4, 2});
  p.sparse = true;
  DpSgdAggregator agg(1.0, 1.0, Rng(177));
  agg.begin_batch({&p});
  p.grad.zero();
  agg.accumulate_example({&p});
  agg.finalize_into_grads({&p});
  EXPECT_FALSE(p.sparse);  // noise densifies the gradient
}

TEST(DpSgd, InvalidConfigRejected) {
  EXPECT_THROW(DpSgdAggregator(0.0, 1.0, Rng(1)), std::runtime_error);
  EXPECT_THROW(DpSgdAggregator(1.0, -0.5, Rng(1)), std::runtime_error);
  Param p = make_param({2});
  DpSgdAggregator agg(1.0, 0.0, Rng(1));
  EXPECT_THROW(agg.finalize_into_grads({&p}), std::runtime_error);
}

TEST(Rdp, GaussianOrderFormulaAtQ1) {
  // Non-subsampled Gaussian: eps(alpha) = alpha / (2 sigma^2).
  const RdpAccountant acct(1.0, 2.0);
  EXPECT_NEAR(acct.rdp_at_order(2), 2.0 / 8.0, 1e-9);
  EXPECT_NEAR(acct.rdp_at_order(16), 16.0 / 8.0, 1e-9);
}

TEST(Rdp, SubsamplingAmplifiesPrivacy) {
  const RdpAccountant full(1.0, 1.0);
  const RdpAccountant sampled(0.01, 1.0);
  EXPECT_LT(sampled.rdp_at_order(4), full.rdp_at_order(4));
  EXPECT_LT(sampled.rdp_at_order(4), 0.01);  // ~q^2 regime
}

TEST(Rdp, EpsilonMonotoneInSteps) {
  const RdpAccountant acct(0.05, 1.0);
  const double delta = 1e-5;
  double prev = 0.0;
  for (const long long steps : {10LL, 100LL, 1000LL}) {
    const double eps = acct.epsilon(steps, delta);
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

TEST(Rdp, EpsilonDecreasesWithNoise) {
  const double delta = 1e-5;
  const double eps_low_noise = RdpAccountant(0.05, 0.6).epsilon(500, delta);
  const double eps_high_noise = RdpAccountant(0.05, 2.0).epsilon(500, delta);
  EXPECT_GT(eps_low_noise, eps_high_noise);
}

TEST(Rdp, ZeroStepsZeroEpsilon) {
  const RdpAccountant acct(0.1, 1.0);
  EXPECT_EQ(acct.epsilon(0, 1e-5), 0.0);
}

TEST(Rdp, InvalidArgsRejected) {
  EXPECT_THROW(RdpAccountant(0.0, 1.0), std::runtime_error);
  EXPECT_THROW(RdpAccountant(1.5, 1.0), std::runtime_error);
  EXPECT_THROW(RdpAccountant(0.1, 0.0), std::runtime_error);
  const RdpAccountant acct(0.1, 1.0);
  EXPECT_THROW(acct.rdp_at_order(1), std::runtime_error);
  EXPECT_THROW(acct.epsilon(10, 0.0), std::runtime_error);
  EXPECT_THROW(acct.epsilon(-1, 1e-5), std::runtime_error);
}

TEST(Rdp, TypicalFigure5RegimeProducesFiniteEpsilon) {
  // Batch 32 of 1000 samples, 60 steps, sigma = 1.0 — a plausible A.3 run.
  const RdpAccountant acct(0.032, 1.0);
  const double eps = acct.epsilon(60, 1e-3);
  EXPECT_GT(eps, 0.1);
  EXPECT_LT(eps, 50.0);
}

}  // namespace
}  // namespace memcom
