// mcm_bench — latency + serving-throughput benchmark for an exported .mcm
// model, driven through the zero-allocation inference fast path.
//
//   ./mcm_bench model.mcm [--runs 1000] [--threads 4] [--requests 256]
//               [--repeat 8] [--seq-len 32] [--profile coreml|tflite]
//
// Prints the single-input latency distribution (mean/min/p50/p95/p99/max,
// the paper's §5.3 metric) and the multi-threaded serving report (QPS,
// per-request wall latency percentiles).
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/serving.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: mcm_bench <model.mcm> [--runs N] [--threads N] "
                 "[--requests N] [--repeat N] [--seq-len L] "
                 "[--profile coreml|tflite]\n";
    return 2;
  }
  const std::string path = flags.positional()[0];
  const int runs = static_cast<int>(flags.get_int("runs", 1000));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const int request_count = static_cast<int>(flags.get_int("requests", 256));
  const int repeat = static_cast<int>(flags.get_int("repeat", 8));
  const Index seq_len = flags.get_int("seq-len", 32);
  if (runs < 1 || threads < 1 || request_count < 1 || repeat < 1 ||
      seq_len < 1) {
    std::cerr << "mcm_bench: --runs/--threads/--requests/--repeat/--seq-len "
                 "must all be positive\n";
    return 2;
  }
  const std::string profile_name = flags.get_string("profile", "tflite");
  if (profile_name != "tflite" && profile_name != "coreml") {
    std::cerr << "mcm_bench: unknown --profile " << profile_name
              << " (expected coreml|tflite)\n";
    return 2;
  }
  const DeviceProfile profile =
      profile_name == "tflite" ? tflite_profile() : coreml_profile("all");

  const MmapModel model(path);
  const Index vocab = model.metadata_int("vocab");
  std::cout << "model: " << path << "  technique="
            << model.metadata_value("technique")
            << " arch=" << model.metadata_value("arch") << " vocab=" << vocab
            << " e=" << model.metadata_int("embed_dim")
            << "  profile=" << profile.label() << "\n\n";

  Rng rng(17);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(request_count));
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len));
    for (auto& id : history) {
      id = static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }

  // Single-input latency (the paper's Table 3 metric).
  InferenceEngine engine(model, profile);
  const LatencyStats stats = engine.benchmark(requests.front(), runs);
  TextTable latency({"runs", "mean ms", "min ms", "p50 ms", "p95 ms",
                     "p99 ms", "max ms", "resident MB"});
  latency.add_row({std::to_string(stats.runs), format_float(stats.mean_ms, 4),
                   format_float(stats.min_ms, 4),
                   format_float(stats.p50_ms, 4),
                   format_float(stats.p95_ms, 4),
                   format_float(stats.p99_ms, 4),
                   format_float(stats.max_ms, 4),
                   format_float(engine.resident_megabytes(), 2)});
  std::cout << "single-input latency (" << runs << " runs):\n"
            << latency.to_string() << "\n";

  // Threaded serving throughput.
  TextTable serving({"threads", "requests", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "wall ms"});
  std::vector<int> thread_counts = {1};
  if (threads > 1) {
    thread_counts.push_back(threads);
  }
  for (const int t : thread_counts) {
    ServingHarness harness(model, profile, t);
    harness.serve(requests, 1);  // warm-up
    const ServingReport report = harness.serve(requests, repeat);
    serving.add_row({std::to_string(report.threads),
                     std::to_string(report.requests),
                     format_float(report.qps, 0),
                     format_float(report.latency.p50_ms, 4),
                     format_float(report.latency.p95_ms, 4),
                     format_float(report.latency.p99_ms, 4),
                     format_float(report.wall_ms, 1)});
  }
  std::cout << "serving throughput:\n" << serving.to_string();
  return 0;
}
