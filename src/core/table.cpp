#include "core/table.h"

#include <algorithm>
#include <sstream>

#include "core/check.h"

namespace memcom {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  check_eq(static_cast<long long>(header_.size()),
           static_cast<long long>(row.size()), "TextTable row width");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      const bool needs_quotes = row[c].find(',') != std::string::npos;
      if (needs_quotes) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string format_float(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string format_ratio(double value) { return format_float(value, 1) + "x"; }

std::string format_percent(double value, int precision) {
  std::string s = format_float(value, precision) + "%";
  if (value > 0.0) {
    s = "+" + s;
  }
  return s;
}

}  // namespace memcom
