#include "ondevice/serving.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
using Clock = SteadyClock;
}  // namespace

ServingHarness::ServingHarness(const MmapModel& model,
                               const DeviceProfile& profile, int threads,
                               std::size_t cache_budget_bytes)
    : ServingHarness(std::make_shared<const CompiledModel>(model), profile,
                     threads, cache_budget_bytes) {}

ServingHarness::ServingHarness(std::shared_ptr<const CompiledModel> compiled,
                               const DeviceProfile& profile, int threads,
                               std::size_t cache_budget_bytes)
    : compiled_(std::move(compiled)) {
  check(compiled_ != nullptr, "serving: null compiled model");
  // A non-positive pool would leave serve() with no one to drain the cursor
  // (and historically made output_dim() dereference an empty engine list).
  check(threads > 0, "serving: thread count must be positive");
  engines_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    // Every worker shares the ONE plan; only per-thread state is built here.
    engines_.push_back(std::make_unique<InferenceEngine>(compiled_, profile));
    if (cache_budget_bytes > 0) {
      engines_.back()->enable_row_cache(cache_budget_bytes);
    }
  }
}

namespace {
RowCacheStats aggregate_engine_cache_stats(
    const std::vector<std::unique_ptr<InferenceEngine>>& engines) {
  RowCacheStats total;
  for (const auto& engine : engines) {
    const RowCacheStats s = engine->row_cache_stats();
    if (!s.enabled) {
      continue;
    }
    total.enabled = true;
    total.hits += s.hits;
    total.misses += s.misses;
    // Each worker owns a private slab, so the fleet pays the sum (unlike
    // the shared weight pages, where the footprint is the max).
    total.resident_bytes += s.resident_bytes;
    total.capacity_bytes += s.capacity_bytes;
  }
  return total;
}

// A drain's report must cover THAT drain: hit/miss counters are lifetime
// totals per engine, so subtract the pre-drain snapshot (resident/capacity
// stay absolute — they describe the slab, not the traffic).
RowCacheStats cache_stats_delta(const RowCacheStats& before,
                                const RowCacheStats& after) {
  RowCacheStats delta = after;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  return delta;
}
}  // namespace

ServingReport ServingHarness::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    Tensor* logits_out) {
  check(repeat > 0, "serving: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  const Index dim = output_dim();
  if (logits_out != nullptr) {
    *logits_out = Tensor({static_cast<Index>(unique), dim});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  if (total == 0) {
    return report;
  }
  const RowCacheStats cache_before = aggregate_engine_cache_stats(engines_);

  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::vector<double>> samples(engines_.size());
  std::vector<double> modeled(engines_.size(), 0.0);
  // Reserve ~2× the fair share per worker: enough headroom for work-stealing
  // imbalance without pre-allocating threads×total samples on large drains.
  // A rare mid-drain realloc happens between timing windows, so it can only
  // nudge aggregate wall_ms/QPS, never an individual latency sample.
  const std::uint64_t per_worker = std::min(
      total, total / static_cast<std::uint64_t>(engines_.size()) * 2 + 64);
  for (auto& s : samples) {
    s.reserve(static_cast<std::size_t>(per_worker));
  }

  const auto run_worker = [&](std::size_t worker) {
    InferenceEngine& engine = *engines_[worker];
    std::vector<double>& lat = samples[worker];
    double busy_ms = 0.0;
    for (;;) {
      const std::uint64_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) {
        break;
      }
      const std::size_t r = static_cast<std::size_t>(i % unique);
      const auto& history = requests[r];
      const auto start = Clock::now();
      const InferenceView view = engine.run_view(history);
      lat.push_back(elapsed_ms(start));
      busy_ms += view.total_ms;
      // Only the first repetition writes logits, so rows are written by
      // exactly one worker (repeat passes would produce identical bytes).
      if (logits_out != nullptr && i < unique) {
        std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), view.logits,
                    static_cast<std::size_t>(dim) * sizeof(float));
      }
    }
    modeled[worker] = busy_ms;
  };

  const auto wall_start = Clock::now();
  if (engines_.size() == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(engines_.size());
    for (std::size_t w = 0; w < engines_.size(); ++w) {
      workers.emplace_back(run_worker, w);
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  report.wall_ms = elapsed_ms(wall_start);

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (const auto& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  report.latency = latency_stats_from_samples(std::move(all));
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  report.modeled_busy_ms =
      *std::max_element(modeled.begin(), modeled.end());
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  report.cache =
      cache_stats_delta(cache_before, aggregate_engine_cache_stats(engines_));
  return report;
}

double ServingHarness::max_resident_megabytes() const {
  double max_mb = 0.0;
  for (const auto& engine : engines_) {
    max_mb = std::max(max_mb, engine->resident_megabytes());
  }
  // The plan's pre-dequantized buffers are resident exactly once for the
  // whole fleet (compile-once sharing); the per-engine figure above covers
  // only per-thread state.
  return max_mb +
         static_cast<double>(plan_resident_bytes()) / (1024.0 * 1024.0);
}

// ---------------------------------------------------------------------------
// AsyncServer

AsyncServer::AsyncServer(const MmapModel& model, const DeviceProfile& profile,
                         AsyncServerConfig config)
    : config_(config),
      profile_(profile),
      owned_registry_(std::make_unique<ModelRegistry>()),
      registry_(owned_registry_.get()),
      default_model_(kDefaultModelId),
      queue_(config.queue_capacity),
      dispatch_(static_cast<std::size_t>(std::max(1, config.threads)) * 2) {
  // The caller owns the mapping (it must outlive the server, as before);
  // the private registry only owns the compiled plan.
  owned_registry_->publish(default_model_,
                           std::make_shared<const CompiledModel>(model));
  start();
}

AsyncServer::AsyncServer(ModelRegistry& registry,
                         std::string default_model_id,
                         const DeviceProfile& profile,
                         AsyncServerConfig config)
    : config_(config),
      profile_(profile),
      registry_(&registry),
      default_model_(std::move(default_model_id)),
      queue_(config.queue_capacity),
      // The dispatch queue only needs to keep every worker fed plus a small
      // runway; bounding it makes scheduler -> worker backpressure propagate
      // back to the admission queue (and from there to producers).
      dispatch_(static_cast<std::size_t>(std::max(1, config.threads)) * 2) {
  start();
}

// Shared tail of both constructors: validate the configuration and the
// default model, then bring the pipeline threads up. Checks run BEFORE any
// thread spawns, so a failed construction never leaks a running thread.
void AsyncServer::start() {
  check(config_.threads > 0, "AsyncServer: thread count must be positive");
  check(config_.max_batch > 0, "AsyncServer: max_batch must be positive");
  check(config_.max_delay_us >= 0.0,
        "AsyncServer: max_delay_us must be non-negative");
  check(registry_->has_model(default_model_),
        "AsyncServer: default model not in registry: " + default_model_);
  worker_stats_.resize(static_cast<std::size_t>(config_.threads));
  scheduler_ = std::thread(&AsyncServer::scheduler_loop, this);
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int w = 0; w < config_.threads; ++w) {
    workers_.emplace_back(&AsyncServer::worker_loop, this,
                          static_cast<std::size_t>(w));
  }
}

AsyncServer::~AsyncServer() {
  queue_.close();  // pops drain what was accepted, then the scheduler exits
  if (scheduler_.joinable()) {
    scheduler_.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

Index AsyncServer::output_dim() const {
  const auto compiled = registry_->acquire(default_model_);
  check(compiled != nullptr,
        "AsyncServer: default model retired: " + default_model_);
  return compiled->output_dim();
}

AsyncServer::QueuedRequest AsyncServer::make_request(
    std::string model_id, std::vector<std::int32_t> history) const {
  QueuedRequest request;
  request.model_id = std::move(model_id);
  request.history = std::move(history);
  request.enqueue_tp = Clock::now();
  return request;
}

std::future<AsyncResult> AsyncServer::submit(
    std::vector<std::int32_t> history) {
  return submit(default_model_, std::move(history));
}

std::future<AsyncResult> AsyncServer::submit(
    std::string model_id, std::vector<std::int32_t> history) {
  check(registry_->has_model(model_id),
        "AsyncServer: submit to unknown model " + model_id);
  QueuedRequest request = make_request(std::move(model_id),
                                       std::move(history));
  std::future<AsyncResult> future = request.promise.get_future();
  check(queue_.push(std::move(request)),
        "AsyncServer: submit after shutdown");
  return future;
}

bool AsyncServer::try_submit(std::vector<std::int32_t> history,
                             std::future<AsyncResult>* out) {
  return try_submit(default_model_, std::move(history), out);
}

bool AsyncServer::try_submit(std::string model_id,
                             std::vector<std::int32_t> history,
                             std::future<AsyncResult>* out) {
  if (!registry_->has_model(model_id)) {
    return false;
  }
  QueuedRequest request = make_request(std::move(model_id),
                                       std::move(history));
  std::future<AsyncResult> future = request.promise.get_future();
  if (!queue_.try_push(std::move(request))) {
    return false;
  }
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

void AsyncServer::scheduler_loop() {
  const auto delay = std::chrono::microseconds(
      static_cast<std::int64_t>(config_.max_delay_us));
  // One open micro-batch per model id; the batch pins its model version at
  // formation so a concurrent swap() never retargets in-flight work.
  struct Pending {
    std::vector<QueuedRequest> requests;
    Clock::time_point deadline;
    std::shared_ptr<const CompiledModel> compiled;
    std::uint64_t version = 0;
  };
  std::unordered_map<std::string, Pending> pending;

  const auto flush = [&](const std::string& model_id, Pending& p) {
    BatchTask task;
    task.model_id = model_id;
    task.compiled = std::move(p.compiled);
    task.version = p.version;
    task.requests = std::move(p.requests);
    dispatch_.push(std::move(task));  // only fails after dispatch_ close
  };

  bool open = true;
  while (open || !pending.empty()) {
    QueuedRequest next;
    bool got = false;
    if (pending.empty()) {
      got = queue_.pop(next);
      if (!got) {
        open = false;  // closed and drained
      }
    } else {
      auto deadline = Clock::time_point::max();
      for (const auto& [id, p] : pending) {
        deadline = std::min(deadline, p.deadline);
      }
      bool timed_out = false;
      got = queue_.pop_wait_until(next, deadline, &timed_out);
      if (!got && !timed_out) {
        open = false;  // closed and drained: flush whatever is pending
      }
    }
    if (got) {
      Pending& p = pending[next.model_id];
      if (p.requests.empty()) {
        p.deadline = Clock::now() + delay;
        // Version pinned HERE: later requests joining this batch ride the
        // same plan even if a swap lands mid-formation. One atomic snapshot:
        // plan and version label must come from the same registry state.
        p.compiled = registry_->acquire(next.model_id, &p.version);
        p.requests.reserve(static_cast<std::size_t>(config_.max_batch));
      }
      const std::string model_id = next.model_id;
      p.requests.push_back(std::move(next));
      if (p.requests.size() >= static_cast<std::size_t>(config_.max_batch)) {
        flush(model_id, p);
        pending.erase(model_id);
      }
    }
    // Flush every batch whose delay budget is spent (all of them on
    // shutdown drain).
    const auto now = Clock::now();
    for (auto it = pending.begin(); it != pending.end();) {
      if (!open || now >= it->second.deadline) {
        flush(it->first, it->second);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  dispatch_.close();
}

void AsyncServer::worker_loop(std::size_t worker) {
  // One context per model id, owned by THIS thread (never shared): the
  // scratch arena, meter, and row cache are private, and bind() re-targets
  // a lane to a freshly swapped version (rebuilding its cache cold).
  std::unordered_map<std::string, std::unique_ptr<ExecutionContext>> contexts;
  std::vector<std::vector<std::int32_t>> histories;
  BatchTask task;
  while (dispatch_.pop(task)) {
    if (task.compiled == nullptr) {
      // The model was retired between admission and batch formation; the
      // futures must still resolve — with the failure, not a hang.
      for (QueuedRequest& r : task.requests) {
        r.promise.set_exception(std::make_exception_ptr(std::runtime_error(
            "AsyncServer: model retired before execution: " +
            task.model_id)));
      }
      completed_.fetch_add(task.requests.size(),
                           std::memory_order_relaxed);
      task = BatchTask{};
      continue;
    }
    std::unique_ptr<ExecutionContext>& slot = contexts[task.model_id];
    if (slot == nullptr) {
      slot = std::make_unique<ExecutionContext>(task.compiled, profile_);
      if (config_.cache_budget_bytes > 0) {
        slot->enable_row_cache(config_.cache_budget_bytes);
      }
    } else {
      slot->bind(task.compiled);  // no-op unless the version changed
    }
    ExecutionContext& context = *slot;

    const auto service_start = Clock::now();
    histories.clear();
    histories.reserve(task.requests.size());
    for (QueuedRequest& r : task.requests) {
      // The history is not read again after execution (only the promise
      // and timestamps are), so hand the buffer over instead of copying.
      histories.push_back(std::move(r.history));
    }
    BatchResult batch = context.run_batch(histories);
    const auto service_end = Clock::now();
    // Derive service_ms from the SAME end timestamp the per-request totals
    // use: a second Clock::now() here could land after a preemption and
    // report service_ms > total_ms for every request in the batch.
    const double service_ms =
        std::chrono::duration<double, std::milli>(service_end - service_start)
            .count();

    // Record stats BEFORE resolving the promises: anyone who has observed
    // every future of a drain is guaranteed to see its samples.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      WorkerStats& stats = worker_stats_[worker];
      stats.modeled_busy_ms += batch.total_ms;
      ++stats.batches;
      ModelLane& lane = stats.models[task.model_id];
      lane.version = task.version;
      ++lane.batches;
      lane.modeled_busy_ms += batch.total_ms;
      lane.cache_hits += batch.cache_hits;
      lane.cache_misses += batch.cache_misses;
      const RowCacheStats cache = context.row_cache_stats();
      lane.cache_enabled = cache.enabled;
      lane.cache_resident_bytes = cache.resident_bytes;
      lane.cache_capacity_bytes = cache.capacity_bytes;
      lane.resident_mb = context.resident_megabytes();
      lane.plan_bytes = task.compiled->plan_resident_bytes();
      for (const QueuedRequest& r : task.requests) {
        const double wait_ms =
            std::chrono::duration<double, std::milli>(service_start -
                                                      r.enqueue_tp)
                .count();
        const double total_ms =
            std::chrono::duration<double, std::milli>(service_end -
                                                      r.enqueue_tp)
                .count();
        stats.queue_wait_ms.push_back(wait_ms);
        stats.service_ms.push_back(service_ms);
        stats.total_ms.push_back(total_ms);
        ++stats.requests;
        lane.total_ms.push_back(total_ms);
        ++lane.requests;
      }
    }

    const Index dim = context.compiled().output_dim();
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      QueuedRequest& r = task.requests[i];
      AsyncResult result;
      result.model_id = task.model_id;
      result.model_version = task.version;
      result.batch = batch.batch;
      result.service_ms = service_ms;
      result.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                 service_start - r.enqueue_tp)
                                 .count();
      result.total_ms = std::chrono::duration<double, std::milli>(
                            service_end - r.enqueue_tp)
                            .count();
      const float* row = &batch.logits.at2(static_cast<Index>(i), 0);
      result.logits.assign(row, row + dim);
      r.promise.set_value(std::move(result));
    }
    completed_.fetch_add(task.requests.size(), std::memory_order_relaxed);
    // Prune every lane whose bound plan the registry has moved past (swap
    // or retire) — including lanes of OTHER models that went idle. Without
    // this a lane that sees no further traffic would pin the old plan (and
    // its mmap) until the server is destroyed; with it a superseded version
    // drains as soon as this worker completes its next batch of any model.
    for (auto it = contexts.begin(); it != contexts.end();) {
      if (registry_->acquire(it->first) != it->second->compiled_ptr()) {
        it = contexts.erase(it);
      } else {
        ++it;
      }
    }
    // Drop the plan reference (and the request buffers) NOW rather than at
    // the next pop: a hot-swapped old version must drain as soon as its
    // last batch completes, not when the worker happens to pick up new
    // work.
    task = BatchTask{};
  }
}

void AsyncServer::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (WorkerStats& stats : worker_stats_) {
    stats = WorkerStats{};
  }
}

ServingReport AsyncServer::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    double arrival_qps, Tensor* logits_out) {
  std::vector<RequestRef> refs;
  refs.reserve(requests.size());
  for (const auto& history : requests) {
    refs.push_back(RequestRef{&default_model_, &history});
  }
  std::vector<std::vector<float>> rows;
  ServingReport report =
      drive(refs, repeat, arrival_qps, logits_out != nullptr ? &rows : nullptr);
  if (logits_out != nullptr) {
    // Row width comes from the rows actually SERVED, not from the current
    // registry state: a concurrent swap()/retire() of the default model
    // after the drain must not invalidate (or abort) 100% successful
    // results. A mid-drain width change still fails the per-row check.
    const Index dim =
        rows.empty() ? 0 : static_cast<Index>(rows.front().size());
    *logits_out = Tensor({static_cast<Index>(requests.size()), dim});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      check_eq(dim, static_cast<long long>(rows[r].size()),
               "AsyncServer: logit row width");
      std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), rows[r].data(),
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  }
  return report;
}

ServingReport AsyncServer::serve(const std::vector<RoutedRequest>& requests,
                                 int repeat, double arrival_qps,
                                 std::vector<std::vector<float>>* logits_out) {
  std::vector<RequestRef> refs;
  refs.reserve(requests.size());
  for (const RoutedRequest& r : requests) {
    refs.push_back(RequestRef{&r.model_id, &r.history});
  }
  return drive(refs, repeat, arrival_qps, logits_out);
}

ServingReport AsyncServer::drive(
    const std::vector<RequestRef>& requests, int repeat, double arrival_qps,
    std::vector<std::vector<float>>* logits_out) {
  check(repeat > 0, "AsyncServer: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  if (logits_out != nullptr) {
    logits_out->assign(unique, {});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  if (total == 0) {
    return report;
  }
  reset_stats();

  // Open-loop arrivals: with a nonzero rate, request i is released at
  // i/arrival_qps seconds regardless of completions (only admission-queue
  // backpressure can stall the producer). rate 0 = as fast as admitted.
  const auto inter_arrival =
      arrival_qps > 0.0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(1.0 / arrival_qps))
          : Clock::duration::zero();

  std::vector<std::future<AsyncResult>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  const auto wall_start = Clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (inter_arrival.count() > 0) {
      std::this_thread::sleep_until(
          wall_start + inter_arrival * static_cast<std::int64_t>(i));
    }
    const RequestRef& r = requests[static_cast<std::size_t>(i % unique)];
    futures.push_back(submit(*r.model_id, *r.history));
  }
  for (std::uint64_t i = 0; i < total; ++i) {
    AsyncResult result = futures[static_cast<std::size_t>(i)].get();
    if (logits_out != nullptr && i < unique) {
      (*logits_out)[static_cast<std::size_t>(i)] = std::move(result.logits);
    }
  }
  report.wall_ms = elapsed_ms(wall_start);
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;

  std::vector<double> waits, services, totals;
  waits.reserve(static_cast<std::size_t>(total));
  services.reserve(static_cast<std::size_t>(total));
  totals.reserve(static_cast<std::size_t>(total));
  std::map<std::string, ModelReport> models;
  std::map<std::string, std::vector<double>> model_totals;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const WorkerStats& stats : worker_stats_) {
      waits.insert(waits.end(), stats.queue_wait_ms.begin(),
                   stats.queue_wait_ms.end());
      services.insert(services.end(), stats.service_ms.begin(),
                      stats.service_ms.end());
      totals.insert(totals.end(), stats.total_ms.begin(),
                    stats.total_ms.end());
      report.batches += stats.batches;
      report.modeled_busy_ms =
          std::max(report.modeled_busy_ms, stats.modeled_busy_ms);
      for (const auto& [model_id, lane] : stats.models) {
        ModelReport& model = models[model_id];
        model.model_id = model_id;
        model.version = std::max(model.version, lane.version);
        model.requests += lane.requests;
        model.batches += lane.batches;
        model.modeled_busy_ms =
            std::max(model.modeled_busy_ms, lane.modeled_busy_ms);
        // Per-tenant footprint: peak per-worker context state plus the
        // plan, which is shared by every worker and counted once.
        model.resident_mb = std::max(
            model.resident_mb,
            lane.resident_mb + static_cast<double>(lane.plan_bytes) /
                                   (1024.0 * 1024.0));
        if (lane.cache_enabled) {
          model.cache.enabled = true;
          model.cache.hits += lane.cache_hits;
          model.cache.misses += lane.cache_misses;
          model.cache.resident_bytes += lane.cache_resident_bytes;
          model.cache.capacity_bytes += lane.cache_capacity_bytes;
        }
        auto& samples = model_totals[model_id];
        samples.insert(samples.end(), lane.total_ms.begin(),
                       lane.total_ms.end());
      }
    }
  }
  report.latency = latency_stats_from_samples(std::move(totals));
  report.queue_wait = latency_stats_from_samples(std::move(waits));
  report.service = latency_stats_from_samples(std::move(services));
  report.mean_batch =
      report.batches > 0
          ? static_cast<double>(total) / static_cast<double>(report.batches)
          : 0.0;
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  for (auto& [model_id, model] : models) {
    model.latency =
        latency_stats_from_samples(std::move(model_totals[model_id]));
    model.mean_batch = model.batches > 0
                           ? static_cast<double>(model.requests) /
                                 static_cast<double>(model.batches)
                           : 0.0;
    model.modeled_qps =
        model.modeled_busy_ms > 0.0
            ? static_cast<double>(model.requests) /
                  (model.modeled_busy_ms / 1000.0)
            : 0.0;
    report.cache.enabled = report.cache.enabled || model.cache.enabled;
    report.cache.hits += model.cache.hits;
    report.cache.misses += model.cache.misses;
    report.cache.resident_bytes += model.cache.resident_bytes;
    report.cache.capacity_bytes += model.cache.capacity_bytes;
    report.per_model.push_back(std::move(model));
  }
  return report;
}

RowCacheStats AsyncServer::cache_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  RowCacheStats total;
  for (const WorkerStats& stats : worker_stats_) {
    for (const auto& [model_id, lane] : stats.models) {
      if (!lane.cache_enabled) {
        continue;
      }
      total.enabled = true;
      total.hits += lane.cache_hits;
      total.misses += lane.cache_misses;
      total.resident_bytes += lane.cache_resident_bytes;
      total.capacity_bytes += lane.cache_capacity_bytes;
    }
  }
  return total;
}

double AsyncServer::max_resident_megabytes() const {
  double max_mb = 0.0;
  std::map<std::string, std::size_t> plan_bytes;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const WorkerStats& stats : worker_stats_) {
      double worker_mb = 0.0;
      for (const auto& [model_id, lane] : stats.models) {
        // One context per model on this worker; their state coexists.
        worker_mb += lane.resident_mb;
        // Plan footprint of the models THIS server served — the registry
        // may host models other servers own, which are not our memory.
        auto& bytes = plan_bytes[model_id];
        bytes = std::max(bytes, lane.plan_bytes);
      }
      max_mb = std::max(max_mb, worker_mb);
    }
  }
  // Plans are compiled once per model version and shared by every worker.
  std::size_t shared_plan_bytes = 0;
  for (const auto& [model_id, bytes] : plan_bytes) {
    shared_plan_bytes += bytes;
  }
  return max_mb +
         static_cast<double>(shared_plan_bytes) / (1024.0 * 1024.0);
}

}  // namespace memcom
