#include "embedding/hash_embeddings.h"

#include "embedding/hashing.h"

namespace memcom {

NaiveHashEmbedding::NaiveHashEmbedding(Index vocab, Index hash_size,
                                       Index embed_dim, Rng& rng)
    : vocab_(vocab),
      table_("naive_hash.table", embedding_init(hash_size, embed_dim, rng)) {
  check(hash_size > 0, "naive_hash: hash size must be positive");
  table_.sparse = true;
}

Tensor NaiveHashEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index e = output_dim();
  const Index m = hash_size();
  Tensor out({input.batch, input.length, e});
  const float* table = table_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const Index j = mod_hash(input.ids[static_cast<std::size_t>(i)], m);
    const float* row = table + j * e;
    float* dst = o + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] = row[c];
    }
  }
  return out;
}

void NaiveHashEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "naive_hash: bad grad shape");
  const Index e = output_dim();
  const Index m = hash_size();
  const float* g = grad_out.data();
  float* grad_table = table_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const Index j = mod_hash(cached_input_.ids[static_cast<std::size_t>(i)], m);
    table_.mark_touched(j);
    float* dst = grad_table + j * e;
    const float* src = g + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] += src[c];
    }
  }
}

DoubleHashEmbedding::DoubleHashEmbedding(Index vocab, Index hash_size,
                                         Index embed_dim, Rng& rng)
    : vocab_(vocab),
      table_a_("double_hash.table_a",
               embedding_init(hash_size, embed_dim / 2, rng)),
      table_b_("double_hash.table_b",
               embedding_init(hash_size, embed_dim / 2, rng)) {
  check(embed_dim % 2 == 0, "double_hash: embed_dim must be even");
  check(hash_size > 0, "double_hash: hash size must be positive");
  table_a_.sparse = true;
  table_b_.sparse = true;
}

Tensor DoubleHashEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index half = table_a_.value.dim(1);
  const Index m = hash_size();
  Tensor out({input.batch, input.length, 2 * half});
  const float* ta = table_a_.value.data();
  const float* tb = table_b_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const float* row_a = ta + mod_hash(id, m) * half;
    const float* row_b = tb + mixed_hash(id, m) * half;
    float* dst = o + i * 2 * half;
    for (Index c = 0; c < half; ++c) {
      dst[c] = row_a[c];
      dst[half + c] = row_b[c];
    }
  }
  return out;
}

void DoubleHashEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "double_hash: bad grad shape");
  const Index half = table_a_.value.dim(1);
  const Index m = hash_size();
  const float* g = grad_out.data();
  float* ga = table_a_.grad.data();
  float* gb = table_b_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const Index ja = mod_hash(id, m);
    const Index jb = mixed_hash(id, m);
    table_a_.mark_touched(ja);
    table_b_.mark_touched(jb);
    const float* src = g + i * 2 * half;
    float* dst_a = ga + ja * half;
    float* dst_b = gb + jb * half;
    for (Index c = 0; c < half; ++c) {
      dst_a[c] += src[c];
      dst_b[c] += src[half + c];
    }
  }
}

WeinbergerEmbedding::WeinbergerEmbedding(Index vocab, Index hash_size,
                                         Index embed_dim, Rng& rng)
    : vocab_(vocab),
      table_("weinberger.table", embedding_init(hash_size, embed_dim, rng)) {
  check(hash_size > 0, "weinberger: hash size must be positive");
  table_.sparse = true;
}

Tensor WeinbergerEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index e = output_dim();
  const Index m = hash_size();
  Tensor out({input.batch, input.length, e});
  const float* table = table_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const float sign = sign_hash(id);
    const float* row = table + j * e;
    float* dst = o + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] = sign * row[c];
    }
  }
  return out;
}

void WeinbergerEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "weinberger: bad grad shape");
  const Index e = output_dim();
  const Index m = hash_size();
  const float* g = grad_out.data();
  float* grad_table = table_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const float sign = sign_hash(id);
    table_.mark_touched(j);
    float* dst = grad_table + j * e;
    const float* src = g + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] += sign * src[c];
    }
  }
}

}  // namespace memcom
