// Finite-difference gradient checking, used throughout the test suite to
// validate every layer's and every embedding technique's backward pass.
#pragma once

#include <functional>
#include <vector>

#include "nn/param.h"

namespace memcom {

struct GradCheckResult {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  Index checked_elements = 0;
  std::vector<float> rel_errors;  // per checked element

  bool ok(float tol = 2e-2f) const { return max_rel_error <= tol; }

  // Fraction of checked elements within `tol` relative error. Chained
  // networks with ReLU kinks can have a few elements where central
  // differences cross a kink and disagree with the (correct) analytic
  // subgradient; those tests assert on this fraction instead of the max.
  float fraction_within(float tol) const;
};

// Compares the analytic gradient stored in `param.grad` (which the caller
// must have already populated via a backward pass) against central finite
// differences of `loss_fn`, which must recompute the loss from the current
// parameter values. Checks up to `max_elements` elements, evenly strided.
GradCheckResult check_param_gradient(Param& param,
                                     const std::function<float()>& loss_fn,
                                     float epsilon = 1e-3f,
                                     Index max_elements = 64);

// Same, but for an arbitrary tensor (e.g. layer inputs) with the analytic
// gradient supplied explicitly.
GradCheckResult check_tensor_gradient(Tensor& tensor,
                                      const Tensor& analytic_grad,
                                      const std::function<float()>& loss_fn,
                                      float epsilon = 1e-3f,
                                      Index max_elements = 64);

}  // namespace memcom
