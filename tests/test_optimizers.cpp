#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memcom {
namespace {

Param make_param(std::vector<float> values, Shape shape = {}) {
  if (shape.empty()) {
    shape = {static_cast<Index>(values.size())};
  }
  return Param("p", Tensor::from_vector(shape, std::move(values)));
}

TEST(Sgd, PlainStepIsValueMinusLrGrad) {
  Param p = make_param({1.0f, 2.0f});
  p.grad = Tensor::from_vector({2}, {10.0f, -10.0f});
  Sgd sgd(0.1);
  sgd.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
  EXPECT_FLOAT_EQ(p.value[1], 3.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Param p = make_param({0.0f});
  Sgd sgd(1.0, 0.5);
  p.grad = Tensor::from_vector({1}, {1.0f});
  sgd.step({&p});  // v=1, x=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad = Tensor::from_vector({1}, {1.0f});
  sgd.step({&p});  // v=1.5, x=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, InvalidMomentumRejected) {
  EXPECT_THROW(Sgd(0.1, 1.0), std::runtime_error);
  EXPECT_THROW(Sgd(0.1, -0.5), std::runtime_error);
}

TEST(Adagrad, FirstStepIsApproxLr) {
  Param p = make_param({0.0f});
  Adagrad opt(0.5, 1e-12);
  p.grad = Tensor::from_vector({1}, {2.0f});
  opt.step({&p});
  // x -= lr * g / sqrt(g^2) = lr
  EXPECT_NEAR(p.value[0], -0.5f, 1e-5f);
}

TEST(Adagrad, StepSizesShrinkOverTime) {
  Param p = make_param({0.0f});
  Adagrad opt(0.5);
  float prev = 0.0f;
  float prev_delta = 1e9f;
  for (int i = 0; i < 5; ++i) {
    p.grad = Tensor::from_vector({1}, {1.0f});
    opt.step({&p});
    const float delta = std::fabs(p.value[0] - prev);
    EXPECT_LT(delta, prev_delta);
    prev_delta = delta;
    prev = p.value[0];
  }
}

TEST(Adam, FirstStepApproxLrTowardGradient) {
  Param p = make_param({1.0f});
  Adam adam(0.1);
  p.grad = Tensor::from_vector({1}, {100.0f});
  adam.step({&p});
  // Bias-corrected first Adam step has magnitude ~lr regardless of grad
  // scale.
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f, 1e-3f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize f(x) = (x-3)^2
  Param p = make_param({0.0f});
  Adam adam(0.2);
  for (int i = 0; i < 300; ++i) {
    p.grad = Tensor::from_vector({1}, {2.0f * (p.value[0] - 3.0f)});
    adam.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(ZeroGrad, DenseClearsEverything) {
  Param p = make_param({1, 2, 3, 4}, {2, 2});
  p.grad = Tensor::full({2, 2}, 5.0f);
  Optimizer::zero_grad({&p});
  for (Index i = 0; i < 4; ++i) {
    EXPECT_EQ(p.grad[i], 0.0f);
  }
}

TEST(ZeroGrad, SparseClearsOnlyTouchedRows) {
  Param p = make_param({0, 0, 0, 0, 0, 0}, {3, 2});
  p.sparse = true;
  p.grad = Tensor::full({3, 2}, 7.0f);
  p.mark_touched(1);
  Optimizer::zero_grad({&p});
  // Row 1 cleared, rows 0/2 untouched (they are assumed already clear in
  // real use; this verifies the selective behaviour).
  EXPECT_EQ(p.grad.at2(0, 0), 7.0f);
  EXPECT_EQ(p.grad.at2(1, 0), 0.0f);
  EXPECT_EQ(p.grad.at2(1, 1), 0.0f);
  EXPECT_EQ(p.grad.at2(2, 1), 7.0f);
  EXPECT_TRUE(p.touched_rows.empty());
}

// Property: for each optimizer, updating a sparse param via touched rows
// gives bit-identical values (on those rows) to a dense update where the
// other rows have zero grad.
class SparseDenseParity : public ::testing::TestWithParam<std::string> {};

TEST_P(SparseDenseParity, TouchedRowUpdatesMatchDense) {
  const std::string kind = GetParam();
  const Index rows = 6;
  const Index cols = 3;
  Rng rng(55);
  const Tensor init = Tensor::randn({rows, cols}, rng);
  const Tensor grads = Tensor::randn({rows, cols}, rng);

  Param dense("dense", init);
  Param sparse("sparse", init);
  sparse.sparse = true;

  auto opt_dense = make_optimizer(kind, 0.05);
  auto opt_sparse = make_optimizer(kind, 0.05);

  for (int step = 0; step < 3; ++step) {
    // Rows 1 and 4 receive gradient this step.
    for (const Index r : {Index{1}, Index{4}}) {
      for (Index c = 0; c < cols; ++c) {
        dense.grad.at2(r, c) = grads.at2(r, c);
        sparse.grad.at2(r, c) = grads.at2(r, c);
      }
      sparse.mark_touched(r);
    }
    opt_dense->step({&dense});
    opt_sparse->step({&sparse});
    Optimizer::zero_grad({&dense});
    Optimizer::zero_grad({&sparse});
    for (const Index r : {Index{1}, Index{4}}) {
      for (Index c = 0; c < cols; ++c) {
        EXPECT_FLOAT_EQ(dense.value.at2(r, c), sparse.value.at2(r, c))
            << kind << " step " << step << " row " << r;
      }
    }
  }
  // Untouched rows of the sparse param must never move.
  for (const Index r : {Index{0}, Index{2}, Index{3}, Index{5}}) {
    for (Index c = 0; c < cols; ++c) {
      EXPECT_FLOAT_EQ(sparse.value.at2(r, c), init.at2(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, SparseDenseParity,
                         ::testing::Values("sgd", "adam", "adagrad"));

TEST(OptimizerFactory, KnownKindsAndRejection) {
  EXPECT_EQ(make_optimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(make_optimizer("adam", 0.1)->name(), "adam");
  EXPECT_EQ(make_optimizer("adagrad", 0.1)->name(), "adagrad");
  EXPECT_THROW(make_optimizer("rmsprop", 0.1), std::runtime_error);
}

TEST(ParamHelpers, TotalCountAndGlobalNorm) {
  Param a = make_param({3.0f, 4.0f});
  Param b = make_param({0.0f});
  a.grad = Tensor::from_vector({2}, {3.0f, 4.0f});
  b.grad = Tensor::from_vector({1}, {0.0f});
  EXPECT_EQ(total_param_count({&a, &b}), 3);
  EXPECT_NEAR(global_grad_norm({&a, &b}), 5.0f, 1e-5f);
  scale_all_grads({&a, &b}, 0.5f);
  EXPECT_NEAR(global_grad_norm({&a, &b}), 2.5f, 1e-5f);
}

TEST(ParamHelpers, FinalizeTouchedSortsAndDedups) {
  Param p = make_param({0, 0, 0, 0}, {4, 1});
  p.mark_touched(3);
  p.mark_touched(1);
  p.mark_touched(3);
  p.finalize_touched();
  EXPECT_EQ(p.touched_rows, (std::vector<Index>{1, 3}));
}

TEST(LearningRate, Adjustable) {
  Sgd sgd(0.1);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.1);
  sgd.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.01);
}

}  // namespace
}  // namespace memcom
