#include "embedding/factory.h"

#include "embedding/factorized.h"
#include "embedding/hash_embeddings.h"
#include "embedding/hashed_nets.h"
#include "embedding/memcom.h"
#include "embedding/mixed_dim.h"
#include "embedding/qr.h"
#include "embedding/truncate_rare.h"
#include "embedding/tt_rec.h"

namespace memcom {

EmbeddingPtr make_embedding(const EmbeddingConfig& config, Rng& rng) {
  const Index v = config.vocab;
  const Index e = config.embed_dim;
  const Index knob = config.knob;
  check(v > 1, "embedding config: vocab must exceed 1");
  check(e > 0, "embedding config: embed_dim must be positive");
  switch (config.kind) {
    case TechniqueKind::kFull:
      return std::make_unique<FullEmbedding>(v, e, rng);
    case TechniqueKind::kMemcom:
      return std::make_unique<MemcomEmbedding>(v, knob, e, rng,
                                               /*with_bias=*/false);
    case TechniqueKind::kMemcomBias:
      return std::make_unique<MemcomEmbedding>(v, knob, e, rng,
                                               /*with_bias=*/true);
    case TechniqueKind::kQrMult:
      return std::make_unique<QrEmbedding>(v, knob, e, rng,
                                           QrComposition::kMultiply);
    case TechniqueKind::kQrConcat:
      return std::make_unique<QrEmbedding>(v, knob, e, rng,
                                           QrComposition::kConcat);
    case TechniqueKind::kNaiveHash:
      return std::make_unique<NaiveHashEmbedding>(v, knob, e, rng);
    case TechniqueKind::kDoubleHash:
      return std::make_unique<DoubleHashEmbedding>(v, knob, e, rng);
    case TechniqueKind::kFactorized:
      return std::make_unique<FactorizedEmbedding>(v, knob, e, rng);
    case TechniqueKind::kReduceDim:
      return std::make_unique<ReducedDimEmbedding>(v, knob, rng);
    case TechniqueKind::kTruncateRare:
      return std::make_unique<TruncateRareEmbedding>(v, knob, e, rng);
    case TechniqueKind::kHashedNets:
      return std::make_unique<HashedNetsEmbedding>(v, knob, e, rng);
    case TechniqueKind::kWeinberger:
      return std::make_unique<WeinbergerEmbedding>(v, knob, e, rng);
    case TechniqueKind::kMixedDim:
      return std::make_unique<MixedDimEmbedding>(v, knob, e, rng);
    case TechniqueKind::kTtRec:
      return std::make_unique<TtRecEmbedding>(v, knob, e, rng);
  }
  check(false, "unknown technique kind");
  return nullptr;  // unreachable
}

std::string technique_name(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kFull:
      return "uncompressed";
    case TechniqueKind::kMemcom:
      return "memcom";
    case TechniqueKind::kMemcomBias:
      return "memcom_bias";
    case TechniqueKind::kQrMult:
      return "qr_mult";
    case TechniqueKind::kQrConcat:
      return "qr_concat";
    case TechniqueKind::kNaiveHash:
      return "naive_hash";
    case TechniqueKind::kDoubleHash:
      return "double_hash";
    case TechniqueKind::kFactorized:
      return "factorized";
    case TechniqueKind::kReduceDim:
      return "reduce_dim";
    case TechniqueKind::kTruncateRare:
      return "truncate_rare";
    case TechniqueKind::kHashedNets:
      return "hashed_nets";
    case TechniqueKind::kWeinberger:
      return "weinberger";
    case TechniqueKind::kMixedDim:
      return "mixed_dim";
    case TechniqueKind::kTtRec:
      return "tt_rec";
  }
  return "unknown";
}

TechniqueKind technique_from_string(const std::string& name) {
  for (const TechniqueKind kind : all_techniques()) {
    if (technique_name(kind) == name) {
      return kind;
    }
  }
  check(false, "unknown technique name: " + name);
  return TechniqueKind::kFull;  // unreachable
}

std::vector<TechniqueKind> figure_techniques() {
  return {
      TechniqueKind::kMemcom,       TechniqueKind::kMemcomBias,
      TechniqueKind::kQrMult,       TechniqueKind::kQrConcat,
      TechniqueKind::kNaiveHash,    TechniqueKind::kDoubleHash,
      TechniqueKind::kFactorized,   TechniqueKind::kReduceDim,
      TechniqueKind::kTruncateRare,
  };
}

std::vector<TechniqueKind> all_techniques() {
  std::vector<TechniqueKind> kinds = figure_techniques();
  kinds.push_back(TechniqueKind::kFull);
  kinds.push_back(TechniqueKind::kHashedNets);
  kinds.push_back(TechniqueKind::kWeinberger);
  kinds.push_back(TechniqueKind::kMixedDim);
  kinds.push_back(TechniqueKind::kTtRec);
  return kinds;
}

Index embedding_param_formula(const EmbeddingConfig& config) {
  const Index v = config.vocab;
  const Index e = config.embed_dim;
  const Index knob = config.knob;
  switch (config.kind) {
    case TechniqueKind::kFull:
      return v * e;
    case TechniqueKind::kMemcom:
      return knob * e + v;
    case TechniqueKind::kMemcomBias:
      return knob * e + 2 * v;
    case TechniqueKind::kQrMult:
      return knob * e + ((v + knob - 1) / knob) * e;
    case TechniqueKind::kQrConcat:
      return knob * (e / 2) + ((v + knob - 1) / knob) * (e / 2);
    case TechniqueKind::kNaiveHash:
    case TechniqueKind::kWeinberger:
      return knob * e;
    case TechniqueKind::kDoubleHash:
      return 2 * knob * (e / 2);
    case TechniqueKind::kFactorized:
      return v * knob + knob * e;
    case TechniqueKind::kReduceDim:
      return v * knob;
    case TechniqueKind::kTruncateRare:
      return (knob + 2) * e;
    case TechniqueKind::kHashedNets:
      return knob;
    case TechniqueKind::kMixedDim:
      return MixedDimEmbedding::param_formula(v, knob, e);
    case TechniqueKind::kTtRec:
      return TtRecEmbedding::param_formula(v, knob, e);
  }
  return 0;
}

}  // namespace memcom
