#include "core/check.h"

#include <sstream>
#include <stdexcept>

namespace memcom {

namespace {
std::string location_prefix(const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name()
     << "): ";
  return os.str();
}
}  // namespace

void check_failed(std::string_view message, const std::source_location& loc) {
  throw std::runtime_error(location_prefix(loc) + std::string(message));
}

void check_failed_eq(std::string_view what, long long expected, long long got,
                     const std::source_location& loc) {
  std::ostringstream os;
  os << location_prefix(loc) << what << ": expected " << expected << ", got "
     << got;
  throw std::runtime_error(os.str());
}

}  // namespace memcom
