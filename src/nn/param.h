// Trainable parameter bookkeeping.
//
// A Param owns a value tensor and its gradient. Embedding tables are huge
// and touched sparsely, so a Param can carry a "touched rows" list: the
// optimizers then update (and zero) only those rows, which is what makes
// training vocabularies of 10^5 rows practical on one core. Dense params
// leave the list empty, meaning "all elements".
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace memcom {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  // If non-empty, only these rows (of a 2-D value tensor) have non-zero
  // gradient this step. Sorted, unique. Maintained by the embedding layers.
  std::vector<Index> touched_rows;
  bool sparse = false;  // true if touched_rows semantics are in use

  Param() = default;
  Param(std::string param_name, Tensor initial_value)
      : name(std::move(param_name)),
        value(std::move(initial_value)),
        grad(value.shape()) {}

  Index numel() const { return value.numel(); }

  void zero_grad();
  // Records `row` as touched (amortized O(1); dedup happens lazily in
  // finalize_touched()).
  void mark_touched(Index row) { touched_rows.push_back(row); }
  void finalize_touched();
};

// Non-owning view over the params of a model, handed to optimizers.
using ParamRefs = std::vector<Param*>;

Index total_param_count(const ParamRefs& params);

// Global L2 norm over all gradients (used by DP-SGD and grad-clipping).
float global_grad_norm(const ParamRefs& params);
void scale_all_grads(const ParamRefs& params, float factor);

}  // namespace memcom
