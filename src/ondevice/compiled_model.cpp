#include "ondevice/compiled_model.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "embedding/factory.h"

namespace memcom {

namespace {
// The engine supports the lookup/one-hot subset of the technique registry;
// going through embedding/factory's TechniqueKind keeps the metadata-string
// mapping in one place, and this exhaustive switch forces an explicit
// supported/unsupported decision whenever the registry grows.
Technique compile_technique(const std::string& name) {
  switch (technique_from_string(name)) {
    case TechniqueKind::kFull: return Technique::kUncompressed;
    case TechniqueKind::kReduceDim: return Technique::kReduceDim;
    case TechniqueKind::kTruncateRare: return Technique::kTruncateRare;
    case TechniqueKind::kNaiveHash: return Technique::kNaiveHash;
    case TechniqueKind::kWeinberger: return Technique::kWeinberger;
    case TechniqueKind::kMemcom: return Technique::kMemcom;
    case TechniqueKind::kMemcomBias: return Technique::kMemcomBias;
    case TechniqueKind::kQrMult: return Technique::kQrMult;
    case TechniqueKind::kQrConcat: return Technique::kQrConcat;
    case TechniqueKind::kDoubleHash: return Technique::kDoubleHash;
    case TechniqueKind::kFactorized: return Technique::kFactorized;
    case TechniqueKind::kHashedNets:
    case TechniqueKind::kMixedDim:
    case TechniqueKind::kTtRec:
      break;
  }
  check(false, "engine: unsupported technique " + name);
  return Technique::kUncompressed;
}

std::size_t float_bytes(const std::vector<float>& v) {
  return v.size() * sizeof(float);
}
}  // namespace

CompiledModel::CompiledModel(const MmapModel& model) : model_(model) {
  compile();
}

CompiledModel::CompiledModel(std::shared_ptr<const MmapModel> model)
    : owned_(std::move(model)), model_(*owned_) {
  compile();
}

void CompiledModel::compile() {
  kernels_ = &select_kernels();
  arch_ = model_.metadata_value("arch");
  technique_ = model_.metadata_value("technique");
  vocab_ = model_.metadata_int("vocab");
  embed_dim_ = model_.metadata_int("embed_dim");
  hash_size_ = model_.metadata_int("knob");
  output_dim_ = model_.metadata_int("output_dim");
  hidden_dim_ =
      model_.has_metadata("hidden_dim") ? model_.metadata_int("hidden_dim") : 0;
  model_name_ = model_.model_name();
  model_version_ = model_.model_version();
  check(arch_ == "classification" || arch_ == "ranking",
        "engine: unknown architecture " + arch_);
  kind_ = compile_technique(technique_);
  embed_ops_ = count_embedding_stage_ops();
  has_hidden_ = arch_ == "classification";

  // Resolve every tensor name once — the forward pass only ever sees the
  // handles below.
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
    case Technique::kWeinberger:
      emb_a_ = resolve("emb.table");
      break;
    case Technique::kMemcom:
    case Technique::kMemcomBias:
      emb_a_ = resolve("emb.shared");
      emb_b_ = resolve("emb.multiplier");
      if (kind_ == Technique::kMemcomBias) {
        emb_c_ = resolve("emb.bias");
      }
      break;
    case Technique::kQrMult:
    case Technique::kQrConcat:
      emb_a_ = resolve("emb.remainder");
      emb_b_ = resolve("emb.quotient");
      break;
    case Technique::kDoubleHash:
      emb_a_ = resolve("emb.table_a");
      emb_b_ = resolve("emb.table_b");
      break;
    case Technique::kFactorized:
      emb_a_ = resolve("emb.factors");
      emb_b_ = resolve("emb.projection");
      factor_dim_ = emb_a_.entry->shape[1];
      predequantize(emb_b_, projection_);
      break;
  }

  bn1_ = resolve_batchnorm("bn1", embed_dim_);
  if (has_hidden_) {
    dense1_ = resolve_dense("dense1", embed_dim_, hidden_dim_);
    bn2_ = resolve_batchnorm("bn2", hidden_dim_);
  }
  out_ = resolve_dense("out", has_hidden_ ? hidden_dim_ : embed_dim_,
                       output_dim_);
}

TensorRef CompiledModel::resolve(const std::string& name) const {
  const TensorEntry& entry = model_.entry(name);
  TensorRef ref;
  ref.entry = &entry;
  ref.payload = model_.payload(entry);
  ref.dtype = entry.dtype;
  ref.scale = entry.scale;
  ref.element_bits = static_cast<std::size_t>(dtype_bits(entry.dtype));
  ref.file_offset = static_cast<Index>(entry.offset);
  if (entry.dtype == DType::kF32) {
    ref.f32 = reinterpret_cast<const float*>(ref.payload);
  }
  ref.src.dtype = entry.dtype;
  ref.src.scale = entry.scale;
  ref.src.payload = ref.payload;
  if (entry.dtype == DType::kI4G) {
    // Split the blob once: [f32 scales header][packed nibbles].
    ref.src.group_scales = reinterpret_cast<const float*>(ref.payload);
    ref.src.packed =
        ref.payload + i4g_scales_bytes(static_cast<std::size_t>(entry.numel()),
                                       entry.group_size);
    ref.src.group_size = entry.group_size;
  }
  return ref;
}

void CompiledModel::predequantize(const TensorRef& ref,
                                  std::vector<float>& out) {
  const Index n = ref.entry->numel();
  out.resize(static_cast<std::size_t>(n));
  // Always the scalar reference: pre-dequantized buffers feed every kernel
  // family, so their contents must not depend on the dispatch decision.
  scalar_kernels().dequant_span(ref.src, 0, n, out.data());
}

BatchNormPlan CompiledModel::resolve_batchnorm(const std::string& prefix,
                                               Index width) {
  BatchNormPlan plan;
  plan.gamma = resolve(prefix + ".gamma");
  plan.beta = resolve(prefix + ".beta");
  plan.mean = resolve(prefix + ".mean");
  plan.var = resolve(prefix + ".var");
  plan.width = width;
  std::vector<float> gamma, beta, mean, var;
  predequantize(plan.gamma, gamma);
  predequantize(plan.beta, beta);
  predequantize(plan.mean, mean);
  predequantize(plan.var, var);
  plan.scale.resize(static_cast<std::size_t>(width));
  plan.shift.resize(static_cast<std::size_t>(width));
  for (Index i = 0; i < width; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    plan.scale[s] = gamma[s] / std::sqrt(var[s] + 1e-5f);
    plan.shift[s] = beta[s] - mean[s] * plan.scale[s];
  }
  return plan;
}

DensePlan CompiledModel::resolve_dense(const std::string& prefix,
                                       Index expect_in, Index expect_out) {
  DensePlan plan;
  plan.weight = resolve(prefix + ".weight");
  plan.bias_ref = resolve(prefix + ".bias");
  plan.in = plan.weight.entry->shape[0];
  plan.out = plan.weight.entry->shape[1];
  // The scratch buffers the forward pass reads/writes are sized from
  // metadata, so an inconsistent file must fail here, not overflow the
  // arena at run time.
  check_eq(expect_in, plan.in, prefix + " input width");
  check_eq(expect_out, plan.out, prefix + " output width");
  predequantize(plan.bias_ref, plan.bias);
  return plan;
}

Index CompiledModel::count_embedding_stage_ops() const {
  // The frameworks execute the WHOLE batch-1 embedding stage as a handful
  // of fused graph ops (gather per table + the composition op), not one op
  // per token — dispatch overhead must be charged accordingly.
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kNaiveHash:
    case Technique::kTruncateRare:
      return 1;  // gather
    case Technique::kMemcom:
      return 3;  // gather U, gather V, broadcast multiply
    case Technique::kMemcomBias:
      return 5;  // + gather W, broadcast add
    case Technique::kQrMult:
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      return 3;  // two gathers + compose
    case Technique::kFactorized:
      return 2;  // gather + projection matmul
    case Technique::kWeinberger:
      return 3;  // one_hot + matmul + reduce_sum (the un-fused §5.3 path)
  }
  return 1;
}

std::vector<Index> CompiledModel::cache_row_widths() const {
  // One partition per embedding tensor of the plan, each with that tensor's
  // row width.
  const Index e = embed_dim_;
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
      return {e};
    case Technique::kMemcom:
      return {e, 1};  // shared rows + per-entity multiplier
    case Technique::kMemcomBias:
      return {e, 1, 1};  // + per-entity bias
    case Technique::kQrMult:
      return {e, e};
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      return {e / 2, e / 2};
    case Technique::kFactorized:
      return {factor_dim_};  // the projection is pre-dequantized already
    case Technique::kWeinberger:
      // The one-hot path streams the entire table every forward; caching
      // individual rows cannot skip any work.
      return {};
  }
  return {};
}

std::size_t CompiledModel::plan_resident_bytes() const {
  std::size_t bytes = float_bytes(projection_);
  bytes += float_bytes(bn1_.scale) + float_bytes(bn1_.shift);
  bytes += float_bytes(bn2_.scale) + float_bytes(bn2_.shift);
  bytes += float_bytes(dense1_.bias) + float_bytes(out_.bias);
  return bytes;
}

}  // namespace memcom
