// Ablation — optimizer choice for MEmCom's two-scale parameterization.
//
// The shared table U receives dense-ish gradients while the per-entity
// multipliers V are extremely sparse (one scalar per occurrence). Adaptive
// optimizers (Adam/Adagrad) give rarely-touched multipliers larger
// effective steps; plain SGD under-trains them. DESIGN.md lists this as the
// design choice behind defaulting to Adam.
#include "bench_common.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);

  print_header(
      "Ablation: optimizer choice (adam / adagrad / sgd) for MEmCom",
      "sparse per-entity multipliers need adaptive step sizes");

  const DatasetSpec spec = spec_by_name(
      flags.get_string("dataset", "movielens"));
  const SyntheticDataset data(spec, /*seed=*/8200 + train.seed);

  TextTable table({"technique", "optimizer", "lr", "nDCG@32"});
  struct OptChoice {
    const char* name;
    double lr;
  };
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kFull}) {
    for (const OptChoice opt : {OptChoice{"adam", 2e-3},
                                OptChoice{"adagrad", 2e-2},
                                OptChoice{"sgd", 1e-1}}) {
      ModelConfig config;
      config.embedding = {kind, data.input_vocab(), 64,
                          std::max<Index>(8, data.input_vocab() / 16)};
      config.arch = ModelArch::kRanking;
      config.output_vocab = data.output_vocab();
      config.seed = train.seed;
      RecModel model(config);
      TrainConfig t = train;
      t.optimizer = opt.name;
      t.learning_rate = opt.lr;
      const EvalResult eval = train_and_evaluate(model, data, t);
      table.add_row({technique_name(kind), opt.name,
                     format_float(opt.lr, 4), format_float(eval.ndcg, 4)});
      std::cout << "  " << technique_name(kind) << " + " << opt.name
                << ": nDCG@32 = " << format_float(eval.ndcg, 4) << "\n";
    }
  }
  std::cout << "\n" << table.to_string();
  return 0;
}
