#include "ondevice/hot_row_cache.h"

#include <algorithm>

#include "core/check.h"

namespace memcom {

namespace {
// Per-slot bookkeeping cost: the 8-byte key. Payload cost is the row width.
constexpr std::size_t kKeyBytes = sizeof(std::uint64_t);

// splitmix64 finalizer: sequential row ids must not map to sequential
// slots, or a direct-mapped cache degenerates for strided access patterns.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

HotRowCache::HotRowCache(std::size_t budget_bytes,
                         std::vector<Index> table_row_elems) {
  check(!table_row_elems.empty(), "HotRowCache: no tables to cache");
  check(budget_bytes > 0, "HotRowCache: budget must be positive");
  const std::size_t per_table = budget_bytes / table_row_elems.size();
  partitions_.reserve(table_row_elems.size());
  for (const Index elems : table_row_elems) {
    check(elems > 0, "HotRowCache: row width must be positive");
    Partition p;
    p.row_elems = elems;
    const std::size_t slot_bytes =
        kKeyBytes + static_cast<std::size_t>(elems) * sizeof(float);
    // A table whose single-slot cost exceeds its share gets ZERO slots and
    // is bypassed (lookups/fills return nullptr). Forcing one slot here
    // would silently push capacity_bytes_ past budget_bytes, breaking the
    // fixed-budget contract this class advertises.
    p.slots = per_table / slot_bytes;
    p.keys.assign(p.slots, 0);
    p.payload.assign(p.slots * static_cast<std::size_t>(elems), 0.0f);
    capacity_bytes_ += p.slots * slot_bytes;
    partitions_.push_back(std::move(p));
  }
}

std::size_t HotRowCache::slot_index(const Partition& p, Index row) {
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(row)) %
                                  p.slots);
}

const float* HotRowCache::lookup(std::size_t table, Index row) {
  Partition& p = partitions_[table];
  if (p.slots == 0) {
    // Bypassed table: the cache was never consulted, so this is neither a
    // hit nor a miss — hit_rate keeps describing tables that CAN cache.
    return nullptr;
  }
  const std::size_t slot = slot_index(p, row);
  if (p.keys[slot] == static_cast<std::uint64_t>(row) + 1) {
    ++hits_;
    return p.payload.data() + slot * static_cast<std::size_t>(p.row_elems);
  }
  ++misses_;
  return nullptr;
}

float* HotRowCache::fill(std::size_t table, Index row) {
  Partition& p = partitions_[table];
  if (p.slots == 0) {
    return nullptr;  // bypassed table: nothing to claim
  }
  const std::size_t slot = slot_index(p, row);
  if (p.keys[slot] == 0) {
    ++p.filled;
  }
  p.keys[slot] = static_cast<std::uint64_t>(row) + 1;
  return p.payload.data() + slot * static_cast<std::size_t>(p.row_elems);
}

std::size_t HotRowCache::slot_count() const {
  std::size_t total = 0;
  for (const Partition& p : partitions_) {
    total += p.slots;
  }
  return total;
}

void HotRowCache::clear() {
  for (Partition& p : partitions_) {
    std::fill(p.keys.begin(), p.keys.end(), 0);
    p.filled = 0;
  }
  hits_ = 0;
  misses_ = 0;
}

RowCacheStats HotRowCache::stats() const {
  RowCacheStats s;
  s.enabled = true;
  s.hits = hits_;
  s.misses = misses_;
  s.capacity_bytes = capacity_bytes_;
  for (const Partition& p : partitions_) {
    s.resident_bytes +=
        p.filled *
        (kKeyBytes + static_cast<std::size_t>(p.row_elems) * sizeof(float));
  }
  return s;
}

}  // namespace memcom
