#include "ondevice/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
double percentile(const std::vector<double>& sorted, std::size_t percent) {
  if (sorted.empty()) {
    return 0.0;
  }
  // Nearest-rank: the smallest sample with at least percent% of samples
  // <= it. Computed in exact integer arithmetic — the float version
  // (ceil(p/100.0 * n)) rounds 0.95*20 up to 19.000000000000004, whose
  // ceil is 20, silently returning the max instead of the 19th sample
  // whenever p*n lands on an inexact double (test_engine pins this).
  const std::size_t n = sorted.size();
  const std::size_t rank = (percent * n + 99) / 100;  // ceil(percent*n/100)
  const std::size_t idx = rank > 0 ? rank - 1 : 0;
  return sorted[std::min(idx, n - 1)];
}
}  // namespace

LatencyStats latency_stats_from_samples(std::vector<double> samples_ms) {
  LatencyStats stats;
  stats.runs = static_cast<int>(samples_ms.size());
  if (samples_ms.empty()) {
    return stats;
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.min_ms = samples_ms.front();
  stats.max_ms = samples_ms.back();
  double total = 0.0;
  for (const double s : samples_ms) {
    total += s;
  }
  stats.mean_ms = total / static_cast<double>(samples_ms.size());
  stats.p50_ms = percentile(samples_ms, 50);
  stats.p95_ms = percentile(samples_ms, 95);
  stats.p99_ms = percentile(samples_ms, 99);
  return stats;
}

InferenceEngine::InferenceEngine(const MmapModel& model, DeviceProfile profile)
    : compiled_(std::make_shared<const CompiledModel>(model)),
      context_(compiled_, std::move(profile)) {}

InferenceEngine::InferenceEngine(std::shared_ptr<const CompiledModel> compiled,
                                 DeviceProfile profile)
    : compiled_(std::move(compiled)), context_(compiled_, std::move(profile)) {
  // A null plan is rejected by the context_ member's constructor above.
}

InferenceResult InferenceEngine::run(const std::vector<std::int32_t>& history) {
  const InferenceView view = run_view(history);
  InferenceResult result;
  result.embedding_ms = view.embedding_ms;
  result.total_ms = view.total_ms;
  result.op_count = view.op_count;
  result.logits = Tensor::from_vector(
      {view.dim}, std::vector<float>(view.logits, view.logits + view.dim));
  return result;
}

LatencyStats InferenceEngine::benchmark(
    const std::vector<std::int32_t>& history, int runs) {
  check(runs > 0, "engine: runs must be positive");
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(run_view(history).total_ms);
  }
  return latency_stats_from_samples(std::move(samples));
}

}  // namespace memcom
