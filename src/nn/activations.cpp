#include "nn/activations.h"

#include "core/ops.h"

namespace memcom {

Tensor Relu::forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor y = x;
  float* p = y.data();
  const Index n = y.numel();
  for (Index i = 0; i < n; ++i) {
    if (p[i] < 0.0f) {
      p[i] = 0.0f;
    }
  }
  return y;
}

Tensor Relu::backward(const Tensor& grad_out) {
  check(grad_out.same_shape(cached_input_), "relu: grad shape mismatch");
  Tensor gx = grad_out;
  const float* x = cached_input_.data();
  float* g = gx.data();
  const Index n = gx.numel();
  for (Index i = 0; i < n; ++i) {
    if (x[i] <= 0.0f) {
      g[i] = 0.0f;
    }
  }
  return gx;
}

Tensor Sigmoid::forward(const Tensor& x, bool /*training*/) {
  Tensor y = x;
  float* p = y.data();
  const Index n = y.numel();
  for (Index i = 0; i < n; ++i) {
    p[i] = sigmoid(p[i]);
  }
  cached_output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  check(grad_out.same_shape(cached_output_), "sigmoid: grad shape mismatch");
  Tensor gx = grad_out;
  const float* y = cached_output_.data();
  float* g = gx.data();
  const Index n = gx.numel();
  for (Index i = 0; i < n; ++i) {
    g[i] *= y[i] * (1.0f - y[i]);
  }
  return gx;
}

}  // namespace memcom
