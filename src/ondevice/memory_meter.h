// Page-granular resident-memory accounting for the on-device simulator.
//
// CoreML and TF-Lite mmap the weight file and rely on the OS to page in
// whatever the model actually dereferences (paper §3). The meter records
// which weight-file pages a forward pass touches; resident weight memory is
// (touched pages + readahead) * page size. This is the mechanism behind
// Table 3's contrast: lookup-based MEmCom touches O(history length) rows
// while Weinberger's one-hot matmul streams the entire table.
#pragma once

#include <cstdint>
#include <set>

#include "core/tensor.h"

namespace memcom {

class MemoryMeter {
 public:
  explicit MemoryMeter(Index page_size_bytes, Index readahead_pages = 0);

  // Records that [offset, offset+length) bytes of the weight file were read.
  void touch(Index offset_bytes, Index length_bytes);

  // Tracks peak transient allocation (activation arena).
  void note_activation_bytes(Index bytes);

  Index touched_pages() const {
    return static_cast<Index>(pages_.size());
  }
  Index weight_resident_bytes() const;
  Index activation_peak_bytes() const { return activation_peak_; }
  Index total_resident_bytes() const {
    return weight_resident_bytes() + activation_peak_;
  }

  void reset();

  Index page_size() const { return page_size_; }

 private:
  Index page_size_;
  Index readahead_pages_;
  std::set<Index> pages_;
  Index activation_peak_ = 0;
  // Steady-state fast path: repeated forwards touch the same ranges over
  // and over, so remember the last page interval already known to be fully
  // resident and skip the set walk (and its potential node allocations).
  Index memo_first_ = -1;
  Index memo_last_ = -2;
};

}  // namespace memcom
