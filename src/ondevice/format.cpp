#include "ondevice/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/check.h"
#include "core/serialize.h"
#include "ondevice/catalog_index.h"
#include "ondevice/plan.h"

namespace memcom {

namespace {
constexpr std::uint32_t kMagic = 0x314D434DU;  // "MCM1" little-endian
constexpr std::uint64_t kBlobAlignment = 64;

std::uint64_t align_up(std::uint64_t offset, std::uint64_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}
}  // namespace

ModelWriter::ModelWriter(std::string path) : path_(std::move(path)) {}

void ModelWriter::set_metadata(const std::string& key,
                               const std::string& value) {
  metadata_[key] = value;
}

void ModelWriter::set_metadata_int(const std::string& key,
                                   std::int64_t value) {
  metadata_[key] = std::to_string(value);
}

void ModelWriter::set_model_identity(const std::string& name,
                                     std::uint64_t version) {
  check(!name.empty(), "ModelWriter: model name must be non-empty");
  check(version >= 1, "ModelWriter: model version must be >= 1");
  metadata_["model_name"] = name;
  metadata_["model_version"] = std::to_string(version);
}

void ModelWriter::add_tensor(const std::string& name, const Tensor& tensor,
                             DType dtype, Index group_size) {
  check(!finished_, "ModelWriter: add_tensor after finish");
  for (const auto& [existing, unused] : tensors_) {
    check(existing != name, "ModelWriter: duplicate tensor name " + name);
  }
  tensors_.emplace_back(name, quantize(tensor, dtype, group_size));
}

std::uint64_t ModelWriter::finish() {
  check(!finished_, "ModelWriter: finish called twice");
  finished_ = true;

  // Grouped tensors need a per-entry group_size field; that is format
  // version 2. Files without any stay at version 1 so pre-v2 readers keep
  // opening them. The version only ever bumps to 3 when a plan section is
  // actually emitted below.
  bool any_grouped = false;
  for (const auto& [unused, qt] : tensors_) {
    any_grouped = any_grouped || dtype_is_grouped(qt.dtype);
  }
  std::uint64_t total = write_file(any_grouped ? 2 : 1, {}, {});
  if (emit_plan_ || emit_index_) {
    // Two-pass emit: stage the section-less file, build the sections from
    // it with the very functions the load-time fallbacks run (so a cold
    // compile / in-process index build of this file reproduces the
    // serialized buffers bit-for-bit), then rewrite with the sections
    // appended. The version is the lowest the contents need: an index
    // forces v4, a plan alone v3.
    std::vector<std::uint8_t> plan_bytes;
    std::vector<std::uint8_t> index_bytes;
    {
      const MmapModel staged(path_);
      if (emit_plan_) {
        plan_bytes = serialize_plan(build_plan(staged));
      }
      if (emit_index_) {
        CatalogIndexConfig config;
        config.clusters = index_clusters_;
        index_bytes =
            serialize_catalog_index(build_catalog_index_for_model(staged,
                                                                  config));
      }
    }
    total = write_file(emit_index_ ? 4 : 3, plan_bytes, index_bytes);
  }
  return total;
}

std::uint64_t ModelWriter::write_file(
    std::uint32_t version, const std::vector<std::uint8_t>& plan_bytes,
    const std::vector<std::uint8_t>& index_bytes) {
  // First pass: serialize header + directory to a buffer to learn its size,
  // with blob offsets filled in afterwards. We do this by computing the
  // directory size analytically: serialize once with zero offsets, then
  // rewrite with real offsets (the directory size does not depend on offset
  // values because offsets and the v3 plan locator are fixed-width u64).
  auto serialize_front = [&](const std::vector<std::uint64_t>& offsets,
                             std::uint64_t plan_offset,
                             std::uint64_t index_offset, std::ostream& os) {
    write_u32(os, kMagic);
    write_u32(os, version);
    if (version >= 3) {
      write_u64(os, plan_offset);
      write_u64(os, plan_bytes.size());
    }
    if (version >= 4) {
      write_u64(os, index_offset);
      write_u64(os, index_bytes.size());
    }
    write_u64(os, metadata_.size());
    for (const auto& [key, value] : metadata_) {
      write_string(os, key);
      write_string(os, value);
    }
    write_u64(os, tensors_.size());
    for (std::size_t i = 0; i < tensors_.size(); ++i) {
      const auto& [name, qt] = tensors_[i];
      write_string(os, name);
      write_u32(os, static_cast<std::uint32_t>(qt.dtype));
      write_u64(os, qt.shape.size());
      for (const Index d : qt.shape) {
        write_i64(os, d);
      }
      write_f32(os, qt.scale);
      if (version >= 2) {
        write_u64(os, static_cast<std::uint64_t>(qt.group_size));
      }
      write_u64(os, offsets[i]);
      write_u64(os, qt.payload.size());
    }
  };

  std::ostringstream probe;
  serialize_front(std::vector<std::uint64_t>(tensors_.size(), 0), 0, 0, probe);
  const std::uint64_t front_size = static_cast<std::uint64_t>(probe.str().size());

  std::vector<std::uint64_t> offsets(tensors_.size());
  std::uint64_t cursor = align_up(front_size, kBlobAlignment);
  for (std::size_t i = 0; i < tensors_.size(); ++i) {
    offsets[i] = cursor;
    cursor = align_up(cursor + tensors_[i].second.payload.size(),
                      kBlobAlignment);
  }
  // The plan section (when present) trails the last blob, 64-byte aligned
  // like every blob so its float regions stay aligned in the mapping; the
  // catalog-index section trails the plan with the same alignment.
  const std::uint64_t plan_offset = cursor;
  const std::uint64_t index_offset =
      align_up(plan_offset + plan_bytes.size(), kBlobAlignment);

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  check(out.good(), "ModelWriter: cannot open " + path_);
  serialize_front(offsets, plan_offset, index_offset, out);
  for (std::size_t i = 0; i < tensors_.size(); ++i) {
    const std::uint64_t pos = static_cast<std::uint64_t>(out.tellp());
    check(pos <= offsets[i], "ModelWriter: offset bookkeeping error");
    for (std::uint64_t p = pos; p < offsets[i]; ++p) {
      out.put('\0');
    }
    const auto& payload = tensors_[i].second.payload;
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  if (version >= 3) {
    for (std::uint64_t p = static_cast<std::uint64_t>(out.tellp());
         p < plan_offset; ++p) {
      out.put('\0');
    }
    out.write(reinterpret_cast<const char*>(plan_bytes.data()),
              static_cast<std::streamsize>(plan_bytes.size()));
  }
  if (version >= 4) {
    for (std::uint64_t p = static_cast<std::uint64_t>(out.tellp());
         p < index_offset; ++p) {
      out.put('\0');
    }
    out.write(reinterpret_cast<const char*>(index_bytes.data()),
              static_cast<std::streamsize>(index_bytes.size()));
  }
  const std::uint64_t total = static_cast<std::uint64_t>(out.tellp());
  out.close();
  check(out.good(), "ModelWriter: write failed for " + path_);
  return total;
}

MmapModel::MmapModel(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  check(fd >= 0, "MmapModel: cannot open " + path);
  struct stat st = {};
  check(::fstat(fd, &st) == 0, "MmapModel: fstat failed for " + path);
  file_size_ = static_cast<std::uint64_t>(st.st_size);
  check(file_size_ > 0, "MmapModel: empty file " + path);
  void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  check(map != MAP_FAILED, "MmapModel: mmap failed for " + path);
  mapping_ = static_cast<const std::uint8_t*>(map);

  // Parse the front matter through an istream view of the mapping.
  std::istringstream is(std::string(
      reinterpret_cast<const char*>(mapping_),
      static_cast<std::size_t>(std::min<std::uint64_t>(file_size_, 1 << 20))));
  check_eq(static_cast<long long>(kMagic),
           static_cast<long long>(read_u32(is)), "MmapModel magic");
  // Version 1: original directory. Version 2: adds a u64 group_size per
  // entry (grouped sub-byte dtypes). Version 3: adds a trailing compiled
  // plan section located by two header u64s. Version 4: adds a trailing
  // catalog-index section and two more locator u64s. All stay readable
  // forever.
  const std::uint32_t version = read_u32(is);
  check(version >= 1 && version <= 4, "MmapModel: unsupported version " +
                                          std::to_string(version));
  format_version_ = version;
  if (version >= 3) {
    plan_offset_ = read_u64(is);
    plan_size_ = read_u64(is);
    plan_declared_ = plan_size_ > 0;
    // Lenient bounds: a corrupt locator makes the plan unreachable (the
    // loader falls back to a full compile), it does not fail the open —
    // the tensor payloads this header describes are still intact.
    if (plan_declared_) {
      if (plan_size_ > file_size_ ||
          plan_offset_ > file_size_ - plan_size_) {
        plan_bounds_error_ = "plan section out of file bounds";
      } else if (plan_offset_ % kBlobAlignment != 0) {
        plan_bounds_error_ = "plan section misaligned";
      }
    }
  }
  if (version >= 4) {
    index_offset_ = read_u64(is);
    index_size_ = read_u64(is);
    index_declared_ = index_size_ > 0;
    // Same lenient contract as the plan: an unreachable index only costs
    // the pruned scan, never the open.
    if (index_declared_) {
      if (index_size_ > file_size_ ||
          index_offset_ > file_size_ - index_size_) {
        index_bounds_error_ = "catalog index section out of file bounds";
      } else if (index_offset_ % kBlobAlignment != 0) {
        index_bounds_error_ = "catalog index section misaligned";
      }
    }
  }
  const std::uint64_t metadata_count = read_u64(is);
  for (std::uint64_t i = 0; i < metadata_count; ++i) {
    std::string key = read_string(is);
    std::string value = read_string(is);
    metadata_.emplace(std::move(key), std::move(value));
  }
  const std::uint64_t tensor_count = read_u64(is);
  for (std::uint64_t i = 0; i < tensor_count; ++i) {
    TensorEntry entry;
    entry.name = read_string(is);
    const std::uint32_t raw_dtype = read_u32(is);
    check(raw_dtype <= static_cast<std::uint32_t>(DType::kI4G),
          "MmapModel: unknown dtype for " + entry.name);
    entry.dtype = static_cast<DType>(raw_dtype);
    const std::uint64_t ndim = read_u64(is);
    check(ndim <= 8, "MmapModel: implausible tensor rank");
    entry.shape.resize(ndim);
    // Overflow-checked element count: a hostile directory can pick dims
    // whose product wraps std::int64_t (UB in shape_numel) or whose packed
    // byte size wraps std::uint64_t back to a plausible value.
    std::int64_t numel = 1;
    for (std::uint64_t d = 0; d < ndim; ++d) {
      entry.shape[d] = read_i64(is);
      check(entry.shape[d] >= 0,
            "MmapModel: negative dimension for " + entry.name);
      check(entry.shape[d] == 0 ||
                numel <= std::numeric_limits<std::int64_t>::max() /
                             entry.shape[d],
            "MmapModel: tensor element count overflows for " + entry.name);
      numel *= entry.shape[d];
    }
    // Densest dtype packs 2 elements per byte, so anything beyond
    // 2*file_size elements cannot be backed by this file — and bounding
    // numel here keeps packed_byte_size below from wrapping.
    check(static_cast<std::uint64_t>(numel) <= file_size_ * 2,
          "MmapModel: tensor larger than file for " + entry.name);
    entry.scale = read_f32(is);
    if (version >= 2) {
      const std::uint64_t raw_group = read_u64(is);
      check(raw_group <=
                static_cast<std::uint64_t>(std::numeric_limits<Index>::max()),
            "MmapModel: implausible group_size for " + entry.name);
      entry.group_size = static_cast<Index>(raw_group);
    }
    // Grouped dtypes require a valid group size; everything else must not
    // carry one (a v1 file can never declare a grouped dtype — the field
    // defaulting to 0 would fail here).
    if (dtype_is_grouped(entry.dtype)) {
      check(entry.group_size > 0 && entry.group_size % 8 == 0,
            "MmapModel: invalid group_size for " + entry.name);
    } else {
      check(entry.group_size == 0,
            "MmapModel: group_size on ungrouped tensor " + entry.name);
    }
    entry.offset = read_u64(is);
    entry.byte_size = read_u64(is);
    // The payload must carry exactly the elements the shape promises...
    check(entry.byte_size ==
              packed_byte_size(entry.dtype, static_cast<std::size_t>(numel),
                               entry.group_size),
          "MmapModel: blob size does not match shape for " + entry.name);
    // ...and live inside the file (subtraction form: offset + byte_size
    // could wrap around std::uint64_t on a hostile directory).
    check(entry.byte_size <= file_size_ &&
              entry.offset <= file_size_ - entry.byte_size,
          "MmapModel: blob out of bounds for " + entry.name);
    const std::string name = entry.name;
    const auto [it, inserted] = entries_.emplace(name, std::move(entry));
    check(inserted, "MmapModel: duplicate tensor name " + name);
    // Positional view in FILE order (map nodes are pointer-stable): plan
    // handles index into this.
    ordered_.push_back(&it->second);
  }
}

MmapModel::~MmapModel() {
  if (mapping_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(mapping_), file_size_);
  }
}

std::string MmapModel::metadata_value(const std::string& key) const {
  const auto it = metadata_.find(key);
  check(it != metadata_.end(), "MmapModel: missing metadata key " + key);
  return it->second;
}

std::int64_t MmapModel::metadata_int(const std::string& key) const {
  // stoll alone would leak std::invalid_argument (and accept trailing
  // garbage like "12abc"); a corrupt metadata value must fail like every
  // other malformed-file problem: with one clean runtime_error.
  const std::string value = metadata_value(key);
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(value, &consumed);
    check(consumed == value.size(),
          "MmapModel: non-numeric metadata " + key + "=" + value);
    return parsed;
  } catch (const std::invalid_argument&) {
    check(false, "MmapModel: non-numeric metadata " + key + "=" + value);
  } catch (const std::out_of_range&) {
    check(false, "MmapModel: metadata out of range " + key + "=" + value);
  }
  return 0;  // unreachable
}

std::string MmapModel::model_name() const {
  const auto it = metadata_.find("model_name");
  return it != metadata_.end() ? it->second : std::string();
}

std::uint64_t MmapModel::model_version() const {
  // Legacy files carry no identity; report the version-0 sentinel instead
  // of failing like a missing mandatory key would.
  if (!has_metadata("model_version")) {
    return 0;
  }
  const std::int64_t version = metadata_int("model_version");
  check(version >= 0, "MmapModel: negative model_version");
  return static_cast<std::uint64_t>(version);
}

bool MmapModel::has_tensor(const std::string& name) const {
  return entries_.count(name) > 0;
}

const TensorEntry& MmapModel::entry(const std::string& name) const {
  entry_lookups_.fetch_add(1, std::memory_order_relaxed);
  const auto it = entries_.find(name);
  check(it != entries_.end(), "MmapModel: missing tensor " + name);
  return it->second;
}

const TensorEntry& MmapModel::entry_at(std::size_t index) const {
  check(index < ordered_.size(),
        "MmapModel: directory index out of range " + std::to_string(index));
  return *ordered_[index];
}

std::size_t MmapModel::entry_index(const std::string& name) const {
  for (std::size_t i = 0; i < ordered_.size(); ++i) {
    if (ordered_[i]->name == name) {
      return i;
    }
  }
  check(false, "MmapModel: missing tensor " + name);
  return 0;  // unreachable
}

const std::uint8_t* MmapModel::plan_data() const {
  if (!plan_declared_ || !plan_bounds_error_.empty()) {
    return nullptr;
  }
  return mapping_ + plan_offset_;
}

const std::uint8_t* MmapModel::index_data() const {
  if (!index_declared_ || !index_bounds_error_.empty()) {
    return nullptr;
  }
  return mapping_ + index_offset_;
}

std::vector<std::string> MmapModel::tensor_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, unused] : entries_) {
    names.push_back(name);
  }
  return names;
}

const std::uint8_t* MmapModel::payload(const TensorEntry& e) const {
  return mapping_ + e.offset;
}

Tensor MmapModel::load_tensor(const std::string& name) const {
  const TensorEntry& e = entry(name);
  Tensor out(e.shape);
  const std::uint8_t* blob = payload(e);
  if (e.dtype == DType::kI4G) {
    const auto* scales = reinterpret_cast<const float*>(blob);
    const std::uint8_t* packed =
        blob + i4g_scales_bytes(static_cast<std::size_t>(out.numel()),
                                e.group_size);
    dequantize_span_i4g(scales, packed, e.group_size, 0, out.numel(),
                        out.data());
  } else {
    dequantize_span(e.dtype, e.scale, blob, 0, out.numel(), out.data());
  }
  return out;
}

}  // namespace memcom
