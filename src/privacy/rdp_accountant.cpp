#include "privacy/rdp_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace memcom {

namespace {
// log(a + b) given log(a), log(b).
double log_add(double log_a, double log_b) {
  if (log_a == -std::numeric_limits<double>::infinity()) {
    return log_b;
  }
  if (log_b == -std::numeric_limits<double>::infinity()) {
    return log_a;
  }
  const double mx = std::max(log_a, log_b);
  return mx + std::log1p(std::exp(std::min(log_a, log_b) - mx));
}

double log_binomial(long long n, long long k) {
  return std::lgamma(static_cast<double>(n + 1)) -
         std::lgamma(static_cast<double>(k + 1)) -
         std::lgamma(static_cast<double>(n - k + 1));
}
}  // namespace

RdpAccountant::RdpAccountant(double sampling_rate, double noise_multiplier)
    : sampling_rate_(sampling_rate), noise_multiplier_(noise_multiplier) {
  check(sampling_rate > 0.0 && sampling_rate <= 1.0,
        "rdp: sampling rate must be in (0, 1]");
  check(noise_multiplier > 0.0, "rdp: noise multiplier must be positive");
}

double RdpAccountant::rdp_at_order(long long alpha) const {
  check(alpha >= 2, "rdp: order must be >= 2");
  const double q = sampling_rate_;
  const double sigma2 = noise_multiplier_ * noise_multiplier_;
  if (q == 1.0) {
    // Plain Gaussian mechanism: eps_RDP(alpha) = alpha / (2 sigma^2).
    return static_cast<double>(alpha) / (2.0 * sigma2);
  }
  // log sum_{k=0}^{alpha} C(alpha,k) (1-q)^{alpha-k} q^k exp(k(k-1)/2sigma^2)
  double log_sum = -std::numeric_limits<double>::infinity();
  for (long long k = 0; k <= alpha; ++k) {
    const double term =
        log_binomial(alpha, k) +
        static_cast<double>(alpha - k) * std::log1p(-q) +
        static_cast<double>(k) * std::log(q) +
        static_cast<double>(k * (k - 1)) / (2.0 * sigma2);
    log_sum = log_add(log_sum, term);
  }
  return std::max(0.0, log_sum / static_cast<double>(alpha - 1));
}

double RdpAccountant::epsilon(long long steps, double delta) const {
  check(steps >= 0, "rdp: negative steps");
  check(delta > 0.0 && delta < 1.0, "rdp: delta must be in (0, 1)");
  if (steps == 0) {
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  for (long long alpha = 2; alpha <= 256; ++alpha) {
    const double eps = static_cast<double>(steps) * rdp_at_order(alpha) +
                       std::log(1.0 / delta) / static_cast<double>(alpha - 1);
    best = std::min(best, eps);
  }
  return best;
}

}  // namespace memcom
