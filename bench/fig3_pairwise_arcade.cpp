// Figure 3 — compression vs. nDCG (pairwise RankNet, Arcade).
//
// Paper setup (§5.2): the RankNet siamese architecture on the Arcade
// dataset; the network scores two item ids against shared user features
// and training maximizes the score difference.
//
// Paper headline: "MEmCom has less than 1% loss in nDCG while compressing
// the Arcade ranking model by 32x"; MEmCom with and without bias perform
// exactly the same (their curves overlap).
#include "bench_common.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Figure 3: compression vs nDCG (pairwise RankNet, Arcade)",
      "paper: MEmCom <1% nDCG loss at 32x compression; memcom and\n"
      "       memcom_bias curves overlap exactly (sec 5.2)");

  const SyntheticDataset data(arcade_spec(), /*seed=*/3000 + train.seed);
  std::cout << "dataset=arcade items=" << data.spec().items
            << " output vocab=" << data.output_vocab() << "\n\n";

  // Baseline: uncompressed pairwise model.
  const EmbeddingConfig base_emb = {TechniqueKind::kFull, data.input_vocab(),
                                    embed_dim, 0};
  PairwiseRankModel baseline(base_emb, data.output_vocab(), 0.1, train.seed);
  const Index baseline_params = baseline.param_count();
  const PairwiseResult base_result =
      train_pairwise_and_evaluate(baseline, data, train);
  std::cout << "baseline nDCG@32 = " << format_float(base_result.ndcg, 4)
            << "  pairwise accuracy = "
            << format_float(base_result.pairwise_accuracy, 3) << "  params = "
            << baseline_params << "\n\n";

  TextTable table({"technique", "knob", "params", "compression", "nDCG@32",
                   "pairwise_acc", "nDCG loss"});
  const std::vector<TechniqueKind> techniques = {
      TechniqueKind::kMemcom,    TechniqueKind::kMemcomBias,
      TechniqueKind::kQrMult,    TechniqueKind::kNaiveHash,
      TechniqueKind::kDoubleHash, TechniqueKind::kReduceDim,
  };
  for (const TechniqueKind kind : techniques) {
    for (const Index knob : knob_ladder(kind, data.input_vocab(), embed_dim,
                                        scale.ladder_levels)) {
      EmbeddingConfig emb = {kind, data.input_vocab(), embed_dim, knob};
      PairwiseRankModel model(emb, data.output_vocab(), 0.1, train.seed);
      const PairwiseResult result =
          train_pairwise_and_evaluate(model, data, train);
      const double ratio = static_cast<double>(baseline_params) /
                           static_cast<double>(model.param_count());
      table.add_row({technique_name(kind), std::to_string(knob),
                     std::to_string(model.param_count()), format_ratio(ratio),
                     format_float(result.ndcg, 4),
                     format_float(result.pairwise_accuracy, 3),
                     format_percent(relative_loss_percent(base_result.ndcg,
                                                          result.ndcg))});
      std::cout << "  " << technique_name(kind) << " knob=" << knob
                << " ratio=" << format_ratio(ratio)
                << " ndcg=" << format_float(result.ndcg, 4) << "\n";
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\npaper reference: MEmCom @32x -> <1% nDCG loss; here the\n"
               "strongest-compression memcom row plays that role.\n";
  return 0;
}
