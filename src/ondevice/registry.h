// Multi-tenant model registry with zero-downtime hot swap.
//
// The paper's deployment story is a fleet of compressed models pushed to
// devices and refreshed continuously; the registry is the serving-side
// anchor for that: named entries map a `model_id` to the CURRENT refcounted
// CompiledModel version. Publication is epoch/RCU-style:
//
//   * `load()`  opens + compiles a .mcm and publishes it as the first
//     version of a new id;
//   * `swap()`  publishes a new version for an existing id. Readers that
//     already `acquire()`d the old version (in-flight micro-batches, bound
//     ExecutionContexts) keep executing against it — the shared_ptr IS the
//     epoch refcount, so the old plan (and its mmap, which the registry
//     hands to CompiledModel as an owning handle) is destroyed exactly when
//     the last in-flight reference drains. No torn reads, no stop-the-world:
//     the registry mutex guards only the id -> version pointer map, never
//     an inference.
//   * `retire()` unregisters an id; again, holders drain at their own pace.
//
// Versioning: every publication bumps a per-id monotonic registry version
// (returned by load/swap). When the files themselves carry identity
// metadata (ModelWriter::set_model_identity), swap() additionally enforces
// that the declared model_version strictly increases and that the declared
// model_name matches — pushing yesterday's artifact over today's fails
// loudly instead of silently serving stale weights.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ondevice/compiled_model.h"

namespace memcom {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Opens + compiles `path` and publishes it as the first version of
  // `model_id`. The registry owns the mapping (it lives exactly as long as
  // plan references do). Fails if the id is already registered — refreshing
  // an existing model is swap()'s job.
  std::uint64_t load(const std::string& model_id, const std::string& path);

  // Publishes a new version of an EXISTING id from `path`; returns the new
  // registry version. In-flight work on the previous version finishes
  // untouched and releases it by refcount.
  std::uint64_t swap(const std::string& model_id, const std::string& path);

  // In-memory publication (tests / already-compiled plans). Applies the
  // same first-version vs upgrade rules as load()/swap().
  std::uint64_t publish(const std::string& model_id,
                        std::shared_ptr<const CompiledModel> compiled);

  // Unregisters `model_id`; returns false when the id is unknown. Holders
  // of acquired versions drain at their own pace.
  bool retire(const std::string& model_id);

  // Snapshot of the CURRENT version (a refcount bump — cheap, never blocks
  // inference). Null when the id is unknown or retired. When `version` is
  // non-null it receives the registry version of the returned plan, taken
  // under the SAME lock — separate acquire()+version() calls could straddle
  // a concurrent swap() and mislabel the plan.
  std::shared_ptr<const CompiledModel> acquire(
      const std::string& model_id, std::uint64_t* version = nullptr) const;

  // Current registry version of `model_id` (0 when unknown).
  std::uint64_t version(const std::string& model_id) const;

  // Whether the CURRENT version of `model_id` took the v3 plan-section
  // fast path at load/swap (false when unknown, retired, or the file was
  // plan-less/stale — load() and swap() fall back to a full compile in
  // those cases, never fail).
  bool plan_adopted(const std::string& model_id) const;

  bool has_model(const std::string& model_id) const;
  std::vector<std::string> model_ids() const;
  std::size_t size() const;

  // Bytes of pre-dequantized plan buffers across all CURRENT versions —
  // the compile-once memory a fleet of workers shares by reference.
  std::size_t plan_resident_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledModel> compiled;
    std::uint64_t version = 0;  // registry-assigned, monotonic per id
  };

  std::uint64_t publish_locked(const std::string& model_id,
                               std::shared_ptr<const CompiledModel> compiled,
                               bool expect_existing);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace memcom
