// "Truncate rare" baseline (§5.1): keep embeddings only for the `keep`
// most frequent entities; everything rarer shares a single OOV row. Relies
// on ids being frequency-sorted (id 1 = most frequent), which our Vocab
// guarantees.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class TruncateRareEmbedding : public EmbeddingLayer {
 public:
  TruncateRareEmbedding(Index vocab, Index keep, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&table_}; }
  std::string name() const override { return "truncate_rare"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return table_.value.dim(1); }

  Index keep() const { return keep_; }
  // Row used for ids > keep (the last table row).
  Index oov_row() const { return keep_ + 1; }

 private:
  Index vocab_;
  Index keep_;
  // Rows: [0]=pad, [1..keep]=kept ids, [keep+1]=shared OOV.
  Param table_;
  IdBatch cached_input_;

  Index row_of(std::int32_t id) const {
    return static_cast<Index>(id) <= keep_ ? static_cast<Index>(id)
                                           : oov_row();
  }
};

}  // namespace memcom
