// Aligned text tables and CSV output for the experiment harness. Every bench
// binary prints the paper's table/figure series through one of these so the
// output format is uniform.
#pragma once

#include <string>
#include <vector>

namespace memcom {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a header separator line.
  std::string to_string() const;
  // Renders as CSV (no escaping beyond quoting commas; values here are
  // numbers and identifiers).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision float formatting ("%.3f"-style, but locale-independent).
std::string format_float(double value, int precision = 3);
// "12.5x"-style compression ratios.
std::string format_ratio(double value);
// "+4.2%" / "-1.3%" style percentage deltas.
std::string format_percent(double value, int precision = 2);

}  // namespace memcom
