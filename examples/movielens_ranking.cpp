// Pointwise ranking across compression techniques on the MovieLens-like
// dataset: a miniature of Figure 2(a) that sweeps four techniques at one
// compression knob and prints the tradeoff table.
//
//   ./movielens_ranking [--knob-div 16] [--epochs 3]
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "repro/sweep.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Index knob_div = flags.get_int("knob-div", 16);
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 3);

  const SyntheticDataset data(movielens_spec(), /*seed=*/7);
  const Index embed_dim = 64;

  std::cout << "== MovieLens pointwise ranking: technique comparison ==\n";
  std::cout << "(input vocab " << data.input_vocab() << ", hash size = vocab/"
            << knob_div << ")\n\n";

  // Baseline.
  ModelConfig config;
  config.embedding = {TechniqueKind::kFull, data.input_vocab(), embed_dim, 0};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel baseline(config);
  const EvalResult base_eval = train_and_evaluate(baseline, data, train);
  std::cout << "baseline nDCG@32 = " << format_float(base_eval.ndcg, 4)
            << " (" << baseline.param_count() << " params)\n\n";

  TextTable table({"technique", "params", "compression", "nDCG@32", "loss"});
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kMemcomBias,
        TechniqueKind::kQrMult, TechniqueKind::kNaiveHash,
        TechniqueKind::kDoubleHash}) {
    ModelConfig c = config;
    c.embedding.kind = kind;
    c.embedding.knob = std::max<Index>(8, data.input_vocab() / knob_div);
    RecModel model(c);
    const EvalResult eval = train_and_evaluate(model, data, train);
    const double ratio = static_cast<double>(baseline.param_count()) /
                         static_cast<double>(model.param_count());
    table.add_row({technique_name(kind), std::to_string(model.param_count()),
                   format_ratio(ratio), format_float(eval.ndcg, 4),
                   format_percent(
                       relative_loss_percent(base_eval.ndcg, eval.ndcg))});
  }
  std::cout << table.to_string();
  return 0;
}
