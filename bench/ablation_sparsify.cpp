// Ablation — sparsification on top of MEmCom (the paper's declared future
// work, Appendix A.2: "We leave the latter as a future work").
//
// Trains a MEmCom ranking model, magnitude-prunes all weights at a sparsity
// grid, and reports the metric plus the effective CSR storage of the
// embedding tables. Answers: how much pruning does a hash-compressed model
// tolerate before ranking quality collapses?
#include "bench_common.h"
#include "ondevice/prune.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);

  print_header(
      "Ablation: magnitude pruning on top of MEmCom (paper future work, A.2)",
      "paper leaves sparsification as future work; this measures it");

  const DatasetSpec spec = spec_by_name(
      flags.get_string("dataset", "movielens"));
  const SyntheticDataset data(spec, /*seed=*/8100 + train.seed);

  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 64,
                      std::max<Index>(8, data.input_vocab() / 10)};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  config.seed = train.seed;

  RecModel reference(config);
  std::cout << "training memcom model (" << reference.param_count()
            << " params)...\n";
  const EvalResult base = train_and_evaluate(reference, data, train);
  std::cout << "dense nDCG@32 = " << format_float(base.ndcg, 4) << "\n\n";
  const std::string checkpoint = "/tmp/memcom_ablation_sparsify.mcm";
  reference.export_mcm(checkpoint);

  TextTable table({"sparsity", "nDCG@32", "loss vs dense", "embedding CSR KB",
                   "dense KB"});
  for (const double sparsity : {0.0, 0.5, 0.8, 0.9, 0.95}) {
    RecModel model(config);
    model.load_mcm(checkpoint);
    const ParamRefs params = model.params();
    magnitude_prune_global(params, sparsity);
    const EvalResult eval = evaluate_model(model, data, train.ndcg_k);

    Index csr_bytes = 0;
    Index dense_bytes = 0;
    for (Param* p : model.embedding().params()) {
      csr_bytes += csr_storage_bytes(p->value);
      dense_bytes += p->numel() * 4;
    }
    table.add_row({format_float(sparsity, 2), format_float(eval.ndcg, 4),
                   format_percent(relative_loss_percent(base.ndcg, eval.ndcg)),
                   std::to_string(csr_bytes / 1024),
                   std::to_string(dense_bytes / 1024)});
    std::cout << "  sparsity " << sparsity << ": nDCG "
              << format_float(eval.ndcg, 4) << "\n";
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nfinding: unlike over-parameterized dense networks (Han et\n"
               "al. prune 90% freely), a hash-compressed embedding is already\n"
               "information-dense — every row serves v/m entities — so even\n"
               "moderate magnitude pruning costs ranking quality. The two\n"
               "compression axes (hashing, sparsity) are not freely\n"
               "composable, supporting the paper's choice to defer it.\n";
  std::remove(checkpoint.c_str());
  return 0;
}
