// Deadline-aware sharded scheduler tests: admission control (shedding),
// deadline-miss accounting, SLO report plumbing, and the work-stealing
// sharded pipeline under skewed multi-tenant load.
//
// Contracts locked down here:
//   * A shed request's future resolves IMMEDIATELY with RequestStatus::kShed
//     and empty logits — and every submitted request resolves exactly once,
//     shed or not (zero loss, zero double-completion).
//   * try_submit failures are fully accounted: each one is either a
//     full-queue rejection (rejected()) or an admission-control shed
//     (shed_total()), never silently dropped.
//   * deadline_missed is marked on executed requests that complete past
//     their deadline, and the report's miss/shed/goodput columns add up.
//   * The sharded scheduler (shards > 1) steals formed batches across
//     shards under skewed per-model load, drains every shard, and produces
//     logits bit-identical to the single-queue schedule.
//
// The CI ThreadSanitizer job runs this suite (MEMCOM_SANITIZE=thread), and
// the Release flake job repeats it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "ondevice/registry.h"
#include "ondevice/serving.h"
#include "ondevice/topk.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, const std::string& tag,
                           std::uint64_t seed = 515, Index output_vocab = 20) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 200;
    config.embedding.embed_dim = 16;
    config.embedding.knob = 32;
    config.arch = ModelArch::kClassification;
    config.output_vocab = output_vocab;
    config.seed = seed;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_scheduler_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string());
    return p.string();
  }

  std::vector<std::filesystem::path> paths_;
};

std::vector<std::int32_t> random_history(std::mt19937& rng) {
  std::uniform_int_distribution<int> len(1, 12);
  std::uniform_int_distribution<std::int32_t> id(1, 199);
  std::vector<std::int32_t> history(static_cast<std::size_t>(len(rng)));
  for (auto& v : history) {
    v = id(rng);
  }
  return history;
}

// --- Admission control / shedding ----------------------------------------

TEST_F(SchedulerTest, ShedPropagatesThroughFuturesWithZeroLoss) {
  const std::string path = export_model(TechniqueKind::kMemcom, "shed");
  const MmapModel model(path);

  // A deadline of ~0 slack makes EVERY positive wait estimate an SLO
  // violation, so shedding arms as soon as the worker has fed the
  // estimator once AND a real backlog exists (queue >= max_batch).
  AsyncServerConfig config;
  config.threads = 1;
  config.max_batch = 1;
  config.max_delay_us = 0.0;
  config.deadline_us = 0.001;  // ~zero slack
  config.shed = true;
  config.queue_capacity = 2;
  AsyncServer server(model, tflite_profile(), config);

  InferenceEngine reference(model, tflite_profile());
  std::mt19937 rng(21);
  struct Submitted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<Submitted> submitted;
  std::uint64_t try_failed = 0;
  constexpr int kAttempts = 300;
  for (int i = 0; i < kAttempts; ++i) {
    Submitted s;
    s.history = random_history(rng);
    if (i % 2 == 0) {
      s.future = server.submit(s.history);  // blocks or sheds, never fails
      submitted.push_back(std::move(s));
    } else if (server.try_submit(s.history, &s.future)) {
      submitted.push_back(std::move(s));
    } else {
      ++try_failed;  // full queue OR shed — accounted below
    }
  }

  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  for (Submitted& s : submitted) {
    const AsyncResult result = s.future.get();  // throws on double-get
    if (result.status == RequestStatus::kShed) {
      ++shed;
      // Shed at the front door: never executed, no logits, no timings.
      EXPECT_TRUE(result.logits.empty());
      EXPECT_EQ(result.service_ms, 0.0);
    } else {
      ++ok;
      const Tensor expected = reference.run(s.history).logits;
      ASSERT_EQ(static_cast<Index>(result.logits.size()), expected.numel());
      for (Index c = 0; c < expected.numel(); ++c) {
        EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c]);
      }
    }
  }
  // Zero loss, zero double-completion: every accepted future resolved once.
  EXPECT_EQ(ok + shed, submitted.size());
  // The near-zero deadline plus a single slow worker guarantees shedding
  // engaged — and some requests still executed (the backlog guard admits
  // until a full micro-batch is queued).
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  // Full accounting of non-admissions: every submit()-shed resolved kShed,
  // and every try_submit failure was either a counted full-queue rejection
  // or a counted shed.
  EXPECT_EQ(server.shed_total() + server.rejected(), shed + try_failed);
}

TEST_F(SchedulerTest, ShedDisabledNeverSheds) {
  const std::string path = export_model(TechniqueKind::kMemcom, "noshed");
  const MmapModel model(path);

  AsyncServerConfig config;
  config.threads = 1;
  config.max_batch = 2;
  config.deadline_us = 0.001;  // hopeless deadline, but shed is OFF
  config.shed = false;
  config.queue_capacity = 4;
  AsyncServer server(model, tflite_profile(), config);

  std::mt19937 rng(22);
  std::vector<std::future<AsyncResult>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(server.submit(random_history(rng)));
  }
  for (auto& f : futures) {
    const AsyncResult result = f.get();
    EXPECT_EQ(result.status, RequestStatus::kOk);
    // Executed past an impossible deadline: missed, not shed.
    EXPECT_TRUE(result.deadline_missed);
  }
  EXPECT_EQ(server.shed_total(), 0u);
}

// --- Deadline accounting --------------------------------------------------

TEST_F(SchedulerTest, DeadlineMissAccountingPerRequestAndInReport) {
  const std::string path = export_model(TechniqueKind::kMemcom, "deadline");
  const MmapModel model(path);

  AsyncServerConfig config;
  config.threads = 2;
  config.max_batch = 4;
  config.queue_capacity = 16;
  AsyncServer server(model, tflite_profile(), config);

  std::mt19937 rng(23);
  // Per-request override beats the config default (0 = none here):
  //   deadline ~0  -> guaranteed miss;  explicit 0 -> no deadline, no miss;
  //   10 seconds   -> guaranteed met.
  const AsyncResult missed =
      server.submit(AsyncServer::kDefaultModelId, random_history(rng), 0.001)
          .get();
  EXPECT_TRUE(missed.deadline_missed);
  const AsyncResult none =
      server.submit(AsyncServer::kDefaultModelId, random_history(rng), 0.0)
          .get();
  EXPECT_FALSE(none.deadline_missed);
  const AsyncResult met =
      server.submit(AsyncServer::kDefaultModelId, random_history(rng), 1e7)
          .get();
  EXPECT_FALSE(met.deadline_missed);

  // Report plumbing, all-miss drain: a config-default ~zero deadline without
  // shedding executes everything past its deadline.
  std::vector<std::vector<std::int32_t>> corpus;
  for (int i = 0; i < 16; ++i) {
    corpus.push_back(random_history(rng));
  }
  AsyncServerConfig hopeless = config;
  hopeless.deadline_us = 0.001;
  {
    AsyncServer miss_server(model, tflite_profile(), hopeless);
    const ServingReport report = miss_server.serve(corpus, 2);
    EXPECT_EQ(report.requests, 32u);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_EQ(report.deadline_misses, 32u);
    EXPECT_EQ(report.deadline_miss_rate, 1.0);
    EXPECT_EQ(report.goodput_qps, 0.0);  // nothing met its SLO
    EXPECT_GT(report.qps, 0.0);
  }
  // All-met drain: a generous deadline makes goodput == throughput.
  AsyncServerConfig generous = config;
  generous.deadline_us = 1e7;
  {
    AsyncServer met_server(model, tflite_profile(), generous);
    const ServingReport report = met_server.serve(corpus, 2);
    EXPECT_EQ(report.deadline_misses, 0u);
    EXPECT_EQ(report.deadline_miss_rate, 0.0);
    EXPECT_EQ(report.shed_rate, 0.0);
    EXPECT_DOUBLE_EQ(report.goodput_qps, report.qps);
  }
}

TEST_F(SchedulerTest, ShedRateAndGoodputReportedUnderOverload) {
  const std::string path = export_model(TechniqueKind::kMemcom, "goodput");
  const MmapModel model(path);

  AsyncServerConfig config;
  config.threads = 1;
  config.max_batch = 1;
  config.max_delay_us = 0.0;
  config.deadline_us = 0.001;
  config.shed = true;
  config.queue_capacity = 2;
  AsyncServer server(model, tflite_profile(), config);

  std::mt19937 rng(24);
  std::vector<std::vector<std::int32_t>> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back(random_history(rng));
  }
  const ServingReport report = server.serve(corpus, 8);
  EXPECT_EQ(report.requests, 256u);
  // Shed + executed must cover the drain; latency stats cover executed only.
  EXPECT_GT(report.shed, 0u);
  EXPECT_LT(report.shed, report.requests);
  EXPECT_EQ(static_cast<std::uint64_t>(report.latency.runs),
            report.requests - report.shed);
  EXPECT_DOUBLE_EQ(
      report.shed_rate,
      static_cast<double>(report.shed) / static_cast<double>(report.requests));
  // Every executed request missed the ~zero deadline, so goodput is zero
  // while raw throughput is not: the columns measure different things.
  EXPECT_EQ(report.deadline_miss_rate, 1.0);
  EXPECT_EQ(report.goodput_qps, 0.0);
  EXPECT_GT(report.qps, 0.0);
}

// --- Sharded scheduler / work stealing ------------------------------------

TEST_F(SchedulerTest, ShardedSkewedLoadStealsDrainsAndMatchesSingleQueue) {
  // Four tenants, one of them taking ~70% of the traffic: the shape that
  // strands capacity without stealing. Contract: every future resolves,
  // batches are stolen across shards, and each request's logits are
  // bit-identical to the single-queue schedule (composition-independent).
  ModelRegistry registry;
  std::vector<std::string> ids;
  for (int m = 0; m < 4; ++m) {
    const std::string id = "tenant" + std::to_string(m);
    registry.load(id, export_model(TechniqueKind::kMemcom, "skew_" + id,
                                   600 + static_cast<std::uint64_t>(m)));
    ids.push_back(id);
  }

  std::mt19937 rng(25);
  std::vector<RoutedRequest> routed;
  for (int i = 0; i < 240; ++i) {
    // i%10 < 7 -> hot tenant; the rest rotate through the cold ones.
    const std::size_t tenant = i % 10 < 7 ? 0 : 1 + i % 3;
    routed.push_back(RoutedRequest{ids[tenant], random_history(rng)});
  }

  const auto drain = [&](int shards, std::uint64_t* steals) {
    AsyncServerConfig config;
    config.threads = 4;
    config.shards = shards;
    config.max_batch = 2;  // many small batches: plenty to steal
    config.max_delay_us = 100.0;
    config.queue_capacity = 16;
    AsyncServer server(registry, ids.front(), tflite_profile(), config);
    std::vector<std::vector<float>> logits;
    const ServingReport report = server.serve(routed, 1, 0.0, &logits);
    EXPECT_EQ(report.requests, routed.size());
    EXPECT_EQ(static_cast<std::size_t>(report.latency.runs), routed.size());
    EXPECT_EQ(report.shards, shards);
    if (steals != nullptr) {
      *steals = report.steals;
    }
    return logits;
  };

  std::uint64_t steals = 0;
  const auto sharded = drain(4, &steals);
  const auto single = drain(1, nullptr);

  // All shards drained: one row of logits per request, none empty.
  ASSERT_EQ(sharded.size(), routed.size());
  for (std::size_t r = 0; r < sharded.size(); ++r) {
    EXPECT_FALSE(sharded[r].empty()) << "request " << r << " never resolved";
  }
  // Skew + 4 workers on 4 shards: idle primaries MUST have stolen from the
  // hot shard at some point across 100+ formed batches.
  EXPECT_GT(steals, 0u);
  // Bit-identity across schedules, per request (stronger than the multiset:
  // rows align with the request corpus in both drains).
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t r = 0; r < sharded.size(); ++r) {
    EXPECT_EQ(sharded[r], single[r]) << "request " << r;
  }
  // ... and as a schedule-independent multiset, the sorted rows agree too.
  auto sorted_sharded = sharded;
  auto sorted_single = single;
  std::sort(sorted_sharded.begin(), sorted_sharded.end());
  std::sort(sorted_single.begin(), sorted_single.end());
  EXPECT_EQ(sorted_sharded, sorted_single);
}

TEST_F(SchedulerTest, ShardConfigIsValidated) {
  const std::string path = export_model(TechniqueKind::kMemcom, "config");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 2;
  config.shards = 3;  // more shards than workers: some shard has no primary
  EXPECT_THROW(AsyncServer(model, tflite_profile(), config),
               std::runtime_error);
  config.shards = 0;
  EXPECT_THROW(AsyncServer(model, tflite_profile(), config),
               std::runtime_error);
  config.shards = 2;
  config.queue_capacity = 1;  // cannot split one slot across two shards
  EXPECT_THROW(AsyncServer(model, tflite_profile(), config),
               std::runtime_error);
  config.queue_capacity = 2;
  AsyncServer server(model, tflite_profile(), config);  // minimal legal split
  EXPECT_EQ(server.shards(), 2);
  EXPECT_EQ(server.queue_capacity(), 2u);
  std::mt19937 rng(26);
  EXPECT_EQ(server.submit(random_history(rng)).get().status,
            RequestStatus::kOk);
}

TEST_F(SchedulerTest, ShardedCapacitySplitsAcrossShardsWithRemainder) {
  const std::string path = export_model(TechniqueKind::kMemcom, "split");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 3;
  config.shards = 3;
  config.queue_capacity = 8;  // 3+3+2: remainder handed to the first shards
  AsyncServer server(model, tflite_profile(), config);
  // The TOTAL admission bound is preserved exactly, not rounded away.
  EXPECT_EQ(server.queue_capacity(), 8u);
}

// --- Session-based next-item serving --------------------------------------

TEST_F(SchedulerTest, SessionHistoryAccumulatesAndRanksAgainstEngine) {
  const std::string path = export_model(TechniqueKind::kMemcom, "session");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 1;
  config.session_capacity = 8;
  config.session_history = 4;
  AsyncServer server(model, tflite_profile(), config);
  InferenceEngine reference(model, tflite_profile());

  // Four interactions of one session: request t must be served on the
  // history [items 0..t] (capped at session_history), and the returned
  // top-k must equal ranking the sequential engine's logits for that exact
  // history — including the lower-id tie-break.
  const std::vector<std::int32_t> items = {3, 17, 42, 101, 7};
  std::vector<std::int32_t> window;
  for (std::size_t t = 0; t < items.size(); ++t) {
    AsyncResult result =
        server
            .submit_next_item(AsyncServer::kDefaultModelId, /*session_id=*/9,
                              items[t], /*k=*/5)
            .get();
    ASSERT_EQ(result.status, RequestStatus::kOk);
    window.push_back(items[t]);
    if (window.size() > 4) {
      window.erase(window.begin());
    }
    const Tensor logits = reference.run(window).logits;
    ASSERT_EQ(result.logits.size(),
              static_cast<std::size_t>(logits.numel()));
    for (Index c = 0; c < logits.numel(); ++c) {
      EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], logits[c])
          << "t=" << t << " logit " << c;
    }
    const std::vector<ScoredId> expect =
        topk_select(logits.data(), logits.numel(), 5);
    ASSERT_EQ(result.top_ids.size(), expect.size()) << "t=" << t;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(result.top_ids[j], expect[j].id) << "t=" << t << " pos " << j;
      EXPECT_EQ(result.top_scores[j], expect[j].score)
          << "t=" << t << " pos " << j;
    }
  }
  EXPECT_EQ(server.active_sessions(), 1);
  EXPECT_EQ(server.evicted_sessions(), 0u);
}

TEST_F(SchedulerTest, SessionEvictionCountsAndReportSliceFills) {
  const std::string path = export_model(TechniqueKind::kMemcom, "sess_evict");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 1;
  config.session_capacity = 4;
  config.session_history = 3;
  AsyncServer server(model, tflite_profile(), config);

  // 12 distinct sessions through a 4-slot store: at least 8 evictions.
  std::vector<SessionEvent> events;
  for (std::uint64_t s = 0; s < 12; ++s) {
    events.push_back({s, static_cast<std::int32_t>(1 + s)});
    events.push_back({s, static_cast<std::int32_t>(2 + s)});
  }
  std::vector<std::vector<Index>> topk;
  const ServingReport report = server.serve_sessions(events, 3, &topk);
  EXPECT_EQ(report.requests, events.size());
  EXPECT_EQ(report.session_requests, events.size());
  EXPECT_EQ(report.shed, 0u);
  EXPECT_GT(report.session_latency.p50_ms, 0.0);
  EXPECT_GE(report.session_latency.p99_ms, report.session_latency.p50_ms);
  EXPECT_EQ(report.active_sessions, 4);
  EXPECT_GE(report.session_evictions, 8u);
  EXPECT_EQ(server.active_sessions(), report.active_sessions);
  ASSERT_EQ(topk.size(), events.size());
  for (const auto& ids : topk) {
    EXPECT_EQ(ids.size(), 3u);
  }
  // Mixed plain serve() after session traffic: report still carries the
  // store counters but no new session requests.
  const ServingReport plain = server.serve({{1, 2, 3}}, 1);
  EXPECT_EQ(plain.session_requests, 0u);
  EXPECT_EQ(plain.active_sessions, 4);
}

TEST_F(SchedulerTest, SessionAffinityKeepsUpdatesOrderedAcrossShards) {
  const std::string path = export_model(TechniqueKind::kMemcom, "sess_shard");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 3;
  config.shards = 3;
  config.session_capacity = 64;
  config.session_history = 16;
  AsyncServer server(model, tflite_profile(), config);
  InferenceEngine reference(model, tflite_profile());

  // Interleave many sessions' updates; every session's FINAL top-k must
  // match the engine run on that session's full in-order history, which
  // can only hold if per-session updates never reorder across formers.
  const int sessions = 12;
  const int rounds = 6;
  std::vector<std::vector<std::future<AsyncResult>>> futures(
      static_cast<std::size_t>(sessions));
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < sessions; ++s) {
      futures[static_cast<std::size_t>(s)].push_back(server.submit_next_item(
          AsyncServer::kDefaultModelId, static_cast<std::uint64_t>(s),
          static_cast<std::int32_t>(1 + s * 7 + r), /*k=*/4));
    }
  }
  for (int s = 0; s < sessions; ++s) {
    std::vector<std::int32_t> history;
    AsyncResult last;
    for (int r = 0; r < rounds; ++r) {
      history.push_back(static_cast<std::int32_t>(1 + s * 7 + r));
      last = futures[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)]
                 .get();
      ASSERT_EQ(last.status, RequestStatus::kOk);
    }
    const Tensor logits = reference.run(history).logits;
    const std::vector<ScoredId> expect =
        topk_select(logits.data(), logits.numel(), 4);
    ASSERT_EQ(last.top_ids.size(), expect.size()) << "session " << s;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(last.top_ids[j], expect[j].id) << "session " << s;
    }
  }
  EXPECT_EQ(server.active_sessions(), sessions);
}

TEST_F(SchedulerTest, SessionConfigValidated) {
  const std::string path = export_model(TechniqueKind::kMemcom, "sess_cfg");
  const MmapModel model(path);
  AsyncServerConfig config;
  config.threads = 2;
  config.shards = 2;
  config.session_capacity = 1;  // cannot split one session slot two ways
  EXPECT_THROW(AsyncServer(model, tflite_profile(), config),
               std::runtime_error);
  config.session_capacity = 0;  // legal: session serving disabled...
  AsyncServer disabled(model, tflite_profile(), config);
  EXPECT_THROW(  // ...but then submit_next_item must refuse, not crash
      disabled.submit_next_item(AsyncServer::kDefaultModelId, 1, 2, 3),
      std::runtime_error);
  config.session_capacity = 5;  // 3+2 split with remainder
  config.session_history = 4;
  AsyncServer server(model, tflite_profile(), config);
  EXPECT_EQ(server.active_sessions(), 0);
  EXPECT_EQ(server
                .submit_next_item(AsyncServer::kDefaultModelId, 1, 2,
                                  /*k=*/0)
                .get()
                .status,
            RequestStatus::kOk);
}

}  // namespace
}  // namespace memcom
