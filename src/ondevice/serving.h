// Serving harnesses over the on-device inference engine.
//
// Two execution models share one read-only weight file (the .mcm is mmap'd
// once; every worker thread owns a private InferenceEngine — scratch arena,
// memory meter, optional hot-row cache — compiled against the shared
// mapping):
//
//   * ServingHarness — CLOSED-LOOP drain: workers pull requests off a
//     lock-free atomic cursor as fast as they complete them. Measures the
//     peak batch-1 throughput of the fast path.
//
//   * AsyncServer — OPEN-LOOP pipeline: producers enqueue requests into a
//     bounded RequestQueue (blocking push / failing try_push = the
//     backpressure surface), a scheduler thread forms dynamic micro-batches
//     (flushed at `max_batch` or after `max_delay_us`), and worker engines
//     execute each micro-batch through the fused run_batch path, so the
//     device profile's per-op dispatch cost is paid once per batch instead
//     of once per request. Every request carries its enqueue/dispatch/
//     complete timestamps, splitting latency into queue-wait vs service
//     time.
//
// Both report real wall-clock QPS and a modeled-device QPS derived from the
// engines' simulated per-forward latency (which includes the profile's
// dispatch overhead — this is where micro-batching visibly wins; real wall
// clock on a shared host measures mostly the simulator itself).
//
// Logits are bit-identical to sequential InferenceEngine::run() on every
// path, cache cold or warm — tests/test_serving.cpp and
// tests/test_differential.cpp enforce this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/tensor.h"
#include "ondevice/clock.h"
#include "ondevice/engine.h"
#include "ondevice/request_queue.h"

namespace memcom {

struct ServingReport {
  int threads = 0;
  std::uint64_t requests = 0;  // total forwards executed
  double wall_ms = 0;          // wall clock of the whole drain
  double qps = 0;              // requests / wall seconds (real clock)
  LatencyStats latency;        // per-request end-to-end wall latency (ms)

  // Modeled-device throughput: each worker engine is one simulated device;
  // its busy time is the sum of the simulated latencies (compute + per-op
  // dispatch) of the forwards it executed. The fleet finishes when the
  // busiest device does.
  double modeled_busy_ms = 0;  // max over workers of summed simulated ms
  double modeled_qps = 0;      // requests / modeled busy seconds

  // Async pipeline only (runs == 0 for the closed-loop harness):
  LatencyStats queue_wait;  // enqueue -> micro-batch picked up by a worker
  LatencyStats service;     // micro-batch execution wall time
  std::uint64_t batches = 0;   // micro-batches dispatched
  double mean_batch = 0;       // requests / batches

  // Hot-row cache totals across workers (enabled=false when no cache).
  RowCacheStats cache;
};

class ServingHarness {
 public:
  // Compiles `threads` independent engines against the shared model. The
  // model must outlive the harness. A nonzero `cache_budget_bytes` attaches
  // a per-engine HotRowCache (bypassed for one-hot techniques).
  ServingHarness(const MmapModel& model, const DeviceProfile& profile,
                 int threads, std::size_t cache_budget_bytes = 0);

  // Drains `requests` (repeated `repeat` times) across the worker pool.
  // When `logits_out` is non-null it is resized to [requests, output_dim]
  // and filled with each request's logits (first repetition).
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, Tensor* logits_out = nullptr);

  int threads() const { return static_cast<int>(engines_.size()); }
  Index output_dim() const { return engines_.front()->output_dim(); }
  const InferenceEngine& engine(int i) const { return *engines_[i]; }

  // Peak resident footprint across workers (each worker meters its own
  // touches; the weight pages are shared, so the fleet-wide footprint is
  // the max, not the sum).
  double max_resident_megabytes() const;

 private:
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
};

// ---------------------------------------------------------------------------
// Asynchronous micro-batching pipeline: queue -> scheduler -> workers.

struct AsyncServerConfig {
  int threads = 2;
  Index max_batch = 8;          // flush a micro-batch at this size...
  double max_delay_us = 200.0;  // ...or this long after its first request
  std::size_t queue_capacity = 1024;  // admission bound (backpressure)
  std::size_t cache_budget_bytes = 0;  // per-engine hot-row cache; 0 = off
};

// What a request's future resolves to.
struct AsyncResult {
  std::vector<float> logits;  // [output_dim]
  double queue_wait_ms = 0;   // enqueue -> worker picked the batch up
  double service_ms = 0;      // fused micro-batch execution (wall)
  double total_ms = 0;        // enqueue -> completion
  Index batch = 0;            // size of the micro-batch this request rode in
};

class AsyncServer {
 public:
  AsyncServer(const MmapModel& model, const DeviceProfile& profile,
              AsyncServerConfig config);
  // Closes the queue, drains every accepted request, joins all threads.
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Enqueues a request; BLOCKS while the queue is at capacity
  // (backpressure). The future resolves once a worker completed the
  // request's micro-batch.
  std::future<AsyncResult> submit(std::vector<std::int32_t> history);

  // Non-blocking admission: false (and no future) when the queue is full
  // or the server is shutting down.
  bool try_submit(std::vector<std::int32_t> history,
                  std::future<AsyncResult>* out);

  // Convenience driver: submits `requests` (repeated `repeat` times) from
  // this thread — paced at `arrival_qps` when nonzero (open-loop arrivals),
  // as fast as backpressure admits otherwise — waits for every completion,
  // and aggregates the report. When `logits_out` is non-null it is filled
  // with the first repetition's logits, row r = requests[r].
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, double arrival_qps = 0.0,
                      Tensor* logits_out = nullptr);

  const AsyncServerConfig& config() const { return config_; }
  int threads() const { return static_cast<int>(engines_.size()); }
  Index output_dim() const { return engines_.front()->output_dim(); }

  // Backpressure observability (lifetime totals of the admission queue).
  std::size_t queue_capacity() const { return queue_.capacity(); }
  std::size_t queue_high_water() const { return queue_.high_water(); }
  std::uint64_t rejected() const { return queue_.rejected(); }

  // Aggregated hot-row cache counters across worker engines.
  RowCacheStats cache_stats() const;
  double max_resident_megabytes() const;

 private:
  struct QueuedRequest {
    std::vector<std::int32_t> history;
    std::promise<AsyncResult> promise;
    SteadyClock::time_point enqueue_tp;
  };
  struct BatchTask {
    std::vector<QueuedRequest> requests;
  };
  // Per-batch accounting a worker appends under stats_mutex_; serve()
  // snapshots these after every future it waits on has resolved.
  struct WorkerStats {
    std::vector<double> queue_wait_ms;
    std::vector<double> service_ms;
    std::vector<double> total_ms;
    double modeled_busy_ms = 0;
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;
  };

  void scheduler_loop();
  void worker_loop(std::size_t worker);
  void reset_stats();

  AsyncServerConfig config_;
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
  RequestQueue<QueuedRequest> queue_;     // producers -> scheduler
  RequestQueue<BatchTask> dispatch_;      // scheduler -> workers
  std::vector<WorkerStats> worker_stats_;
  mutable std::mutex stats_mutex_;
  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace memcom
