#include "embedding/truncate_rare.h"

namespace memcom {

TruncateRareEmbedding::TruncateRareEmbedding(Index vocab, Index keep,
                                             Index embed_dim, Rng& rng)
    : vocab_(vocab),
      keep_(keep),
      table_("truncate_rare.table", embedding_init(keep + 2, embed_dim, rng)) {
  check(keep > 0 && keep < vocab, "truncate_rare: keep must be in (0, vocab)");
  table_.sparse = true;
}

Tensor TruncateRareEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index e = output_dim();
  Tensor out({input.batch, input.length, e});
  const float* table = table_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const float* row =
        table + row_of(input.ids[static_cast<std::size_t>(i)]) * e;
    float* dst = o + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] = row[c];
    }
  }
  return out;
}

void TruncateRareEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "truncate_rare: bad grad shape");
  const Index e = output_dim();
  const float* g = grad_out.data();
  float* grad_table = table_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const Index row = row_of(cached_input_.ids[static_cast<std::size_t>(i)]);
    table_.mark_touched(row);
    float* dst = grad_table + row * e;
    const float* src = g + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] += src[c];
    }
  }
}

}  // namespace memcom
