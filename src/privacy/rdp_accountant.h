// Rényi differential privacy accountant for the subsampled Gaussian
// mechanism (Mironov 2017; Mironov, Talwar & Zhang 2019) — the same
// accounting TensorFlow Privacy performs for the paper's Appendix A.3
// setup ("RDP's delta parameter set to 1/number_of_training_points").
#pragma once

#include <vector>

namespace memcom {

class RdpAccountant {
 public:
  // sampling_rate q = batch_size / dataset_size (Poisson subsampling),
  // noise_multiplier sigma = noise stddev / clip norm.
  RdpAccountant(double sampling_rate, double noise_multiplier);

  // RDP epsilon of ONE mechanism invocation at integer order alpha >= 2
  // (Mironov et al. 2019, Theorem 9 upper bound via the binomial
  // expansion).
  double rdp_at_order(long long alpha) const;

  // (epsilon, delta)-DP after `steps` compositions: minimizes over orders
  // alpha in [2, 256] of steps*rdp(alpha) + log(1/delta)/(alpha-1).
  double epsilon(long long steps, double delta) const;

  double sampling_rate() const { return sampling_rate_; }
  double noise_multiplier() const { return noise_multiplier_; }

 private:
  double sampling_rate_;
  double noise_multiplier_;
};

}  // namespace memcom
