// Fixed-capacity per-session history store for the stateful next-item
// serving workload (ROADMAP item 3).
//
// Each session id owns a bounded ring of the last `history_capacity` item
// ids; append_and_snapshot() appends one interaction and hands back the
// post-append history oldest-first, which AsyncServer feeds through the
// normal inference path. Everything — the ring slab, the open-addressing
// id→slot map (linear probing with backward-shift deletion, so no
// tombstone buildup), and the intrusive LRU links — is sized once at
// construction: zero steady-state allocation, matching the engine's
// fast-path guarantee. When all slots are occupied the least-recently-used
// session is evicted (counted in evicted_sessions()); its slot is scrubbed
// before reuse so a recycled slot can never leak another session's items.
//
// Threading: AsyncServer keeps one SessionStore per shard, owned and
// touched ONLY by that shard's batch-former thread — session-affine
// routing (hash(session_id) picks the shard) means a session's updates all
// arrive at that one thread in submission order, so the store needs no
// lock. The two counters are atomics so report assembly can read them from
// another thread after the formers quiesce.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace memcom {

class SessionStore {
 public:
  SessionStore(Index max_sessions, Index history_capacity);

  // Appends `item` to the session's ring — creating the session (evicting
  // the LRU one if full) when absent — then copies the post-append history
  // oldest-first into `out` and returns its length (<= history_capacity).
  // `out` is resized, never re-reserved beyond history_capacity: a caller
  // that reserved history_capacity up front stays allocation-free.
  Index append_and_snapshot(std::uint64_t session_id, std::int32_t item,
                            std::vector<std::int32_t>& out);

  // Snapshot without appending; returns 0 (and clears `out`) when the
  // session is unknown. Does not touch LRU order.
  Index history(std::uint64_t session_id, std::vector<std::int32_t>& out) const;

  bool contains(std::uint64_t session_id) const;

  Index max_sessions() const { return max_sessions_; }
  Index history_capacity() const { return history_capacity_; }

  // Cross-thread observable counters.
  Index active_sessions() const {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted_sessions() const {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t probe_start(std::uint64_t session_id) const;
  // Hash-table index holding `session_id`, or SIZE_MAX when absent.
  std::size_t find_bucket(std::uint64_t session_id) const;
  void hash_insert(std::uint64_t session_id, Index slot);
  void hash_erase(std::uint64_t session_id);
  void lru_unlink(Index slot);
  void lru_push_front(Index slot);

  Index max_sessions_ = 0;
  Index history_capacity_ = 0;

  // Open-addressing table, capacity a power of two >= 2 * max_sessions.
  std::size_t mask_ = 0;
  std::vector<std::uint8_t> bucket_used_;
  std::vector<std::uint64_t> bucket_key_;
  std::vector<Index> bucket_slot_;

  // Per-slot session state over one preallocated slab.
  std::vector<std::int32_t> ring_;      // [max_sessions * history_capacity]
  std::vector<std::uint64_t> slot_id_;  // owning session id per slot
  std::vector<Index> len_;
  std::vector<Index> head_;

  // Intrusive LRU (head = most recent, tail = eviction victim).
  std::vector<Index> lru_prev_;
  std::vector<Index> lru_next_;
  Index lru_head_ = -1;
  Index lru_tail_ = -1;

  std::vector<Index> free_slots_;

  std::atomic<Index> active_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace memcom
