// Figure 5 (Appendix A.3) — privacy vs accuracy tradeoff.
//
// Paper setup: differentially-private federated training (RDP framework,
// global DP, constant L2 clip, delta = 1/|train|) of the Arcade ranking
// model; y = % nDCG loss vs an uncompressed model trained WITHOUT noise;
// x = noise multiplier; series = uncompressed, naive hashing, MEmCom,
// reduce-dim.
//
// Paper shape: MEmCom loses less nDCG than the uncompressed model and
// naive hashing at every noise multiplier (compressed models have fewer
// parameters to perturb).
#include "bench_common.h"
#include "privacy/rdp_accountant.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 1);
  train.batch_size = flags.get_int("batch", 16);
  train.learning_rate = flags.get_double("lr", 2e-3);
  train.seed = flags.get_int("seed", 99);
  // DP-SGD runs one backward per example; keep the split small by default.
  train.train_fraction = flags.get_double("train-fraction", full ? 0.5 : 0.2);

  print_header(
      "Figure 5: privacy (DP noise multiplier) vs nDCG loss — Arcade",
      "paper: MEmCom more robust to DP noise than the uncompressed model\n"
      "       and naive hashing at every noise multiplier (appendix A.3)");

  const SyntheticDataset data(arcade_spec(), /*seed=*/5000 + train.seed);
  const Index embed_dim = flags.get_int("embed-dim", 32);
  const Index vocab = data.input_vocab();

  // Noiseless uncompressed baseline (the y-axis reference): same federated
  // pipeline (clipped per-example gradients) with the noise turned off, so
  // the reported losses isolate the effect of the privacy noise.
  ModelConfig base_config;
  base_config.embedding = {TechniqueKind::kFull, vocab, embed_dim, 0};
  base_config.arch = ModelArch::kRanking;
  base_config.output_vocab = data.output_vocab();
  base_config.seed = train.seed;
  RecModel baseline(base_config);
  const EvalResult base_eval =
      train_dp_and_evaluate(baseline, data, train, /*clip=*/1.0,
                            /*noise=*/0.0);
  std::cout << "noiseless uncompressed nDCG@32 = "
            << format_float(base_eval.ndcg, 4) << "\n\n";

  const double dataset_size =
      static_cast<double>(data.train().size()) * train.train_fraction;
  const double sampling_rate = train.batch_size / dataset_size;
  const double delta = 1.0 / dataset_size;  // the paper's A.3 choice
  const long long steps = static_cast<long long>(train.epochs) *
                          static_cast<long long>(dataset_size /
                                                 train.batch_size);

  std::vector<double> noises = {0.0, 1.0, 2.0};
  if (full) {
    noises = {0.0, 0.5, 1.0, 2.0, 4.0};
  }

  struct Series {
    TechniqueKind kind;
    Index knob;
  };
  const std::vector<Series> series = {
      {TechniqueKind::kFull, 0},
      {TechniqueKind::kNaiveHash, std::max<Index>(8, vocab / 16)},
      {TechniqueKind::kMemcom, std::max<Index>(8, vocab / 16)},
      {TechniqueKind::kReduceDim, std::max<Index>(2, embed_dim / 4)},
  };

  TextTable table({"technique", "noise", "nDCG@32", "loss vs noiseless",
                   "epsilon"});
  for (const Series& entry : series) {
    for (const double noise : noises) {
      ModelConfig config = base_config;
      config.embedding = {entry.kind, vocab, embed_dim, entry.knob};
      RecModel model(config);
      const EvalResult eval =
          train_dp_and_evaluate(model, data, train, /*clip=*/1.0, noise);
      std::string epsilon = "inf";
      if (noise > 0.0) {
        const RdpAccountant accountant(sampling_rate, noise);
        epsilon = format_float(accountant.epsilon(steps, delta), 2);
      }
      table.add_row({technique_name(entry.kind), format_float(noise, 1),
                     format_float(eval.ndcg, 4),
                     format_percent(
                         relative_loss_percent(base_eval.ndcg, eval.ndcg)),
                     epsilon});
      std::cout << "  " << technique_name(entry.kind) << " noise=" << noise
                << " ndcg=" << format_float(eval.ndcg, 4) << "\n";
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\ndelta = 1/|train| = " << delta << ", steps = " << steps
            << ", sampling rate = " << format_float(sampling_rate, 4) << "\n";
  return 0;
}
