// Ablation — frequency-sorted vocabulary ids (§5.1 design choice).
//
// The paper assigns ids by frequency ("the most downloaded app is assigned
// the id n+1") and MEmCom's Algorithm 2 notes "sorted by frequency". With
// `i mod m` hashing, frequency sorting guarantees the m most popular
// entities occupy m distinct buckets. This ablation retrains MEmCom and
// naive hashing with ids randomly permuted to measure how much of the
// technique's quality depends on that choice.
#include <algorithm>

#include "bench_common.h"
#include "nn/loss.h"

using namespace memcom;
using namespace memcom::bench;

namespace {

// Applies a fixed random permutation to all non-pad ids of a dataset copy.
SyntheticDataset* g_unused = nullptr;  // (no dataset mutation API needed)

std::vector<Sample> permute_ids(const std::vector<Sample>& samples,
                                const std::vector<std::int32_t>& mapping) {
  std::vector<Sample> out = samples;
  for (Sample& s : out) {
    for (std::int32_t& id : s.history) {
      if (id != kPadId) {
        id = mapping[static_cast<std::size_t>(id)];
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Ablation: frequency-sorted ids vs randomly permuted ids",
      "design choice from sec 5.1 / Algorithm 2: with i mod m hashing,\n"
      "frequency sorting keeps the popular head in distinct buckets");

  const DatasetSpec spec = spec_by_name(
      flags.get_string("dataset", "millionsongs"));
  const SyntheticDataset data(spec, /*seed=*/8000 + train.seed);
  const Index vocab = data.input_vocab();

  // Random permutation of non-pad ids.
  std::vector<std::int32_t> mapping(static_cast<std::size_t>(vocab));
  for (Index i = 0; i < vocab; ++i) {
    mapping[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  }
  Rng perm_rng(777);
  for (Index i = vocab - 1; i > 1; --i) {
    const Index j = 1 + perm_rng.uniform_index(i);  // keep pad id 0 fixed
    std::swap(mapping[static_cast<std::size_t>(i)],
              mapping[static_cast<std::size_t>(j)]);
  }

  TextTable table({"technique", "ids", "hash size", "metric"});
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kNaiveHash}) {
    const Index m = std::max<Index>(8, vocab / 16);
    for (const bool permuted : {false, true}) {
      ModelConfig config;
      config.embedding = {kind, vocab, embed_dim, m};
      config.arch = ModelArch::kRanking;
      config.output_vocab = data.output_vocab();
      config.seed = train.seed;
      RecModel model(config);

      EvalResult eval;
      if (!permuted) {
        eval = train_and_evaluate(model, data, train);
      } else {
        // Train/evaluate on the permuted view via a thin manual loop that
        // reuses the trainer on remapped copies.
        // (The generator is deterministic; remapping histories is
        // equivalent to scrambling the id->frequency relationship.)
        struct Remapped {
          std::vector<Sample> train_split;
          std::vector<Sample> eval_split;
        };
        Remapped remapped{permute_ids(data.train(), mapping),
                          permute_ids(data.eval(), mapping)};
        // Build a dataset-like wrapper by training manually.
        Rng rng(train.seed);
        Batcher batcher(remapped.train_split, train.batch_size, rng);
        auto optimizer =
            make_optimizer(train.optimizer, train.learning_rate);
        const ParamRefs params = model.params();
        SoftmaxCrossEntropy loss;
        for (Index epoch = 0; epoch < train.epochs; ++epoch) {
          Batch batch;
          while (batcher.next(batch)) {
            const Tensor logits = model.forward(batch.inputs, true);
            loss.forward(logits, batch.labels);
            model.backward(loss.backward());
            optimizer->step(params);
            Optimizer::zero_grad(params);
          }
          batcher.reshuffle();
        }
        const Index n = static_cast<Index>(remapped.eval_split.size());
        Tensor scores({n, data.output_vocab()});
        std::vector<Index> labels(static_cast<std::size_t>(n));
        for (Index first = 0; first < n; first += 256) {
          const Index count = std::min<Index>(256, n - first);
          const Batch batch = make_batch(remapped.eval_split, first, count);
          const Tensor logits = model.forward(batch.inputs, false);
          for (Index r = 0; r < count; ++r) {
            labels[static_cast<std::size_t>(first + r)] =
                batch.labels[static_cast<std::size_t>(r)];
            for (Index c = 0; c < data.output_vocab(); ++c) {
              scores.at2(first + r, c) = logits.at2(r, c);
            }
          }
        }
        eval.ndcg = ndcg_at_k(scores, labels,
                              std::min<Index>(32, data.output_vocab()));
      }
      table.add_row({technique_name(kind),
                     permuted ? "random permutation" : "frequency sorted",
                     std::to_string(m), format_float(eval.ndcg, 4)});
      std::cout << "  " << technique_name(kind) << " / "
                << (permuted ? "permuted" : "freq-sorted") << ": nDCG@32 = "
                << format_float(eval.ndcg, 4) << "\n";
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nexpected: frequency-sorted >= permuted for both (the mod\n"
               "hash stops protecting the popular head once ids are\n"
               "scrambled); MEmCom degrades less because multipliers still\n"
               "separate colliding ids.\n";
  (void)g_unused;
  return 0;
}
