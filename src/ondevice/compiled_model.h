// Immutable, shareable execution plan compiled from an mmap'd .mcm model.
//
// Compilation happens ONCE per model file: the technique metadata string is
// resolved to an enum, every tensor name to a `TensorRef` handle (with a
// direct `const float*` payload view for fp32 blobs), the batchnorm
// parameters are folded into scale/shift pairs, and the small trunk tensors
// (biases, the factorized projection) are pre-dequantized. The result is a
// read-only plan that any number of worker threads can execute against
// concurrently — per-thread mutable state (scratch arena, memory meter,
// hot-row cache) lives in ExecutionContext, NOT here.
//
// Since the v3 plan section landed, "compile" is adopt-or-build: when the
// file carries a valid serialized plan (ondevice/plan.h), construction is
// mmap + validate + pointer fixup and the pre-dequantized buffers are
// ZERO-COPY views into the mapping; on any defect (stale identity,
// truncation, bad checksum) it falls back to build_plan() — bit-identical,
// because the writer emitted the section with that same function.
//
// This split is what makes multi-tenant serving cheap: N workers serving
// one model share one CompiledModel by reference (the plan's pre-dequantized
// buffers are paid for once, see plan_resident_bytes()), and the
// ModelRegistry publishes new versions as fresh CompiledModel instances
// whose lifetime is refcount-managed — in-flight batches keep the old
// version (and, when the plan owns its mapping, the mmap itself) alive
// until they drain.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/catalog_index.h"
#include "ondevice/format.h"
#include "ondevice/kernels.h"
#include "ondevice/plan.h"

namespace memcom {

// A pre-resolved tensor handle: directory entry + raw payload pointer; for
// fp32 blobs also a direct float view that bypasses dequantize_span.
struct TensorRef {
  const TensorEntry* entry = nullptr;
  const std::uint8_t* payload = nullptr;
  const float* f32 = nullptr;
  DType dtype = DType::kF32;
  float scale = 1.0f;
  std::size_t element_bits = 32;
  Index file_offset = 0;  // byte offset of the blob within the file
  // Codec view for the kernel layer's dequant_span: for i4g the scales
  // header / nibble region split is resolved here, once, at compile time.
  SpanSrc src;
};

// Inference-folded batchnorm: y = x * scale + shift with
// scale = gamma / sqrt(var + eps), shift = beta - mean * scale. The raw
// handles are kept so the per-run metering matches the unfused reads.
struct BatchNormPlan {
  TensorRef gamma, beta, mean, var;
  PlanBuffer scale, shift;
  Index width = 0;
};

struct DensePlan {
  TensorRef weight;    // [in, out] row-major
  TensorRef bias_ref;  // metered per run; values pre-dequantized below
  PlanBuffer bias;
  Index in = 0;
  Index out = 0;
};

// Whether construction may take the v3 plan-section fast path. kNeverAdopt
// forces a full build_plan() compile even on a plan-bearing file — the
// cold-start benchmark's baseline leg and the differential harness's
// fallback leg.
enum class PlanPolicy : std::uint8_t { kAdoptIfPresent, kNeverAdopt };

class CompiledModel {
 public:
  // Compiles against a caller-owned mapping; `model` must outlive the plan.
  explicit CompiledModel(const MmapModel& model,
                         PlanPolicy policy = PlanPolicy::kAdoptIfPresent);
  // Compiles against a shared mapping and keeps it alive: the mmap is
  // released only when the last plan reference drains (the ModelRegistry's
  // hot-swap retirement path).
  explicit CompiledModel(std::shared_ptr<const MmapModel> model,
                         PlanPolicy policy = PlanPolicy::kAdoptIfPresent);

  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

  const MmapModel& model() const { return model_; }

  // Identity metadata (empty name / version 0 for legacy files that
  // predate set_model_identity).
  const std::string& model_name() const { return model_name_; }
  std::uint64_t model_version() const { return model_version_; }

  const std::string& technique() const { return technique_; }
  Technique technique_kind() const { return kind_; }
  const std::string& architecture() const { return arch_; }
  bool uses_onehot_path() const { return kind_ == Technique::kWeinberger; }

  Index vocab() const { return vocab_; }
  Index embed_dim() const { return embed_dim_; }
  Index hash_size() const { return hash_size_; }
  Index hidden_dim() const { return hidden_dim_; }
  Index output_dim() const { return output_dim_; }
  Index factor_dim() const { return factor_dim_; }
  Index embedding_stage_ops() const { return embed_ops_; }
  bool has_hidden() const { return has_hidden_; }

  const TensorRef& emb_a() const { return emb_a_; }
  const TensorRef& emb_b() const { return emb_b_; }
  const TensorRef& emb_c() const { return emb_c_; }
  const BatchNormPlan& bn1() const { return bn1_; }
  const BatchNormPlan& bn2() const { return bn2_; }
  const DensePlan& dense1() const { return dense1_; }
  const DensePlan& out() const { return out_; }
  const PlanBuffer& projection() const { return projection_; }

  // Cold-start accounting: whether this plan was ADOPTED from the file's
  // serialized plan section (fast path) or built by a full compile; why
  // adoption was skipped (empty when adopted); and the wall time of the
  // adopt-or-build step. ServingReport and the cold-start bench surface
  // these fleet-wide.
  bool plan_adopted() const { return plan_adopted_; }
  const std::string& plan_fallback_reason() const {
    return plan_fallback_reason_;
  }
  double compile_ms() const { return compile_ms_; }

  // v4 clustered catalog index, adopted ZERO-COPY when the file carries a
  // valid section (independent of PlanPolicy — there is no in-process
  // rebuild fallback at load time, pruning is simply unavailable without
  // it). On ANY section defect has_catalog_index() is false, the reason is
  // recorded here, and every nprobe request falls back to the exact full
  // scan — pruning is an optimization, never a correctness dependency.
  bool has_catalog_index() const { return index_adopted_; }
  const CatalogIndex& catalog_index() const { return catalog_index_; }
  const std::string& index_fallback_reason() const {
    return index_fallback_reason_;
  }
  // Attaches (or replaces) an in-process-built index — the tooling path
  // for pruned-scan benchmarks over files without a v4 section. Must be
  // called before the plan is shared across threads; serving adoption
  // normally happens inside compile().
  void attach_catalog_index(CatalogIndex index) {
    index_adopted_ = true;
    index_fallback_reason_.clear();
    catalog_index_ = std::move(index);
  }

  // The kernel family this plan dispatches to, chosen ONCE at compile time
  // (select_kernels() honors MEMCOM_DISABLE_SIMD / MEMCOM_ENABLE_FMA at the
  // moment of compilation). Every ExecutionContext running this plan uses
  // the same family, so a plan's logits are deterministic across threads.
  const KernelSet& kernels() const { return *kernels_; }
  const char* kernel_name() const { return kernels_->name; }

  // Row widths (floats) of the lookup-path embedding tensors, one per
  // hot-row-cache partition; EMPTY for the one-hot Weinberger path, which
  // streams the whole table and cannot benefit from row caching.
  std::vector<Index> cache_row_widths() const;

  // Bytes of the plan's pre-dequantized buffers (folded batchnorm, dense
  // biases, the factorized projection). This is the per-plan memory the
  // PR-3 serving layer duplicated once per worker and that sharing one
  // CompiledModel now pays exactly once per model version.
  std::size_t plan_resident_bytes() const;

 private:
  void compile(PlanPolicy policy);
  // Pointer fixup: binds a position-independent CompiledPlan (built OR
  // decoded from the file's plan section) to this mapping.
  void adopt(CompiledPlan plan);

  TensorRef resolve_handle(const PlanHandle& handle) const;

  // Keepalive for registry-owned mappings (null when the caller owns it).
  std::shared_ptr<const MmapModel> owned_;
  const MmapModel& model_;

  std::string model_name_;
  std::uint64_t model_version_ = 0;
  std::string arch_;  // "classification" | "ranking"
  std::string technique_;
  Technique kind_ = Technique::kUncompressed;
  Index vocab_ = 0;
  Index embed_dim_ = 0;  // output width of the embedding stage
  Index hash_size_ = 0;  // technique knob (m / h / keep / buckets)
  Index hidden_dim_ = 0; // classification trunk width (e/2)
  Index output_dim_ = 0;
  Index embed_ops_ = 0;  // precomputed embedding-stage fused-op count
  Index factor_dim_ = 0; // factorized h
  bool has_hidden_ = false;

  bool plan_adopted_ = false;
  std::string plan_fallback_reason_;
  double compile_ms_ = 0;

  bool index_adopted_ = false;
  CatalogIndex catalog_index_;
  std::string index_fallback_reason_;

  const KernelSet* kernels_ = nullptr;
  TensorRef emb_a_;  // table / shared / remainder / table_a / factors
  TensorRef emb_b_;  // multiplier / quotient / table_b / projection
  TensorRef emb_c_;  // memcom_bias bias
  PlanBuffer projection_;  // factorized: pre-dequantized [h, e]
  BatchNormPlan bn1_, bn2_;
  DensePlan dense1_, out_;
};

}  // namespace memcom
