#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace memcom {

namespace {

std::vector<std::vector<float>> make_latents(Index count, Index dim,
                                             Rng& rng) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
  std::vector<std::vector<float>> latents(static_cast<std::size_t>(count));
  for (auto& row : latents) {
    row.resize(static_cast<std::size_t>(dim));
    for (float& v : row) {
      v = rng.normal(0.0f, scale);
    }
  }
  return latents;
}

float dot(const std::vector<float>& a, const std::vector<float>& b) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

}  // namespace

SyntheticDataset::SyntheticDataset(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      item_popularity_(zipf_weights(spec_.items, spec_.zipf_alpha)),
      output_popularity_(zipf_weights(spec_.output_vocab, spec_.output_alpha)) {
  check(spec_.items > 1, "dataset: need at least 2 items");
  check(spec_.output_vocab > 1, "dataset: need at least 2 labels");
  check(spec_.seq_len > 1, "dataset: need seq_len > 1");
  Rng rng(seed);
  Rng latent_rng = rng.split(1);
  item_latents_ = make_latents(spec_.items, spec_.latent_dim, latent_rng);
  output_latents_ = make_latents(spec_.output_vocab, spec_.latent_dim,
                                 latent_rng);

  Rng train_rng = rng.split(2);
  train_.reserve(static_cast<std::size_t>(spec_.train_samples));
  for (Index i = 0; i < spec_.train_samples; ++i) {
    train_.push_back(generate_sample(train_rng));
  }
  Rng eval_rng = rng.split(3);
  eval_.reserve(static_cast<std::size_t>(spec_.eval_samples));
  for (Index i = 0; i < spec_.eval_samples; ++i) {
    eval_.push_back(generate_sample(eval_rng));
  }
}

Sample SyntheticDataset::generate_sample(Rng& rng) {
  const Index d = spec_.latent_dim;
  const float affinity = static_cast<float>(spec_.affinity);

  // User latent and country.
  std::vector<float> user(static_cast<std::size_t>(d));
  const float uscale = 1.0f / std::sqrt(static_cast<float>(d));
  for (float& v : user) {
    v = rng.normal(0.0f, uscale);
  }

  // Candidate pool drawn by popularity (deduplicated — a user interacts
  // with each item at most once, like the paper's purchase histories), then
  // affinity-reweighted history.
  const Index pool_target = std::min<Index>(spec_.items, 256);
  std::vector<Index> pool;
  pool.reserve(static_cast<std::size_t>(pool_target));
  {
    std::vector<bool> seen(static_cast<std::size_t>(spec_.items), false);
    for (Index draws = 0;
         draws < 4 * pool_target &&
         static_cast<Index>(pool.size()) < pool_target;
         ++draws) {
      const Index item = item_popularity_.sample(rng);
      if (!seen[static_cast<std::size_t>(item)]) {
        seen[static_cast<std::size_t>(item)] = true;
        pool.push_back(item);
      }
    }
  }
  // Gumbel-top-k over (affinity·<u,z> + log popularity) == sampling without
  // replacement from softmax of that score: histories are popularity-biased
  // AND user-specific, independent of how flat the candidate pool is.
  const Index pool_size = static_cast<Index>(pool.size());
  std::vector<float> pool_scores(static_cast<std::size_t>(pool_size));
  for (Index i = 0; i < pool_size; ++i) {
    const Index item = pool[static_cast<std::size_t>(i)];
    pool_scores[static_cast<std::size_t>(i)] =
        affinity *
            dot(user, item_latents_[static_cast<std::size_t>(item)]) +
        static_cast<float>(std::log(item_popularity_.probability(item)));
  }

  // History length varies so padding is exercised (paper §5.1 pads with 0).
  const Index max_history =
      spec_.seq_len - (spec_.countries > 0 ? 1 : 0);
  const Index history_len =
      max_history / 2 + rng.uniform_index(max_history / 2 + 1);
  const std::vector<Index> chosen =
      gumbel_top_k(pool_scores, std::min(history_len, pool_size), rng);

  Sample sample;
  sample.history.assign(static_cast<std::size_t>(spec_.seq_len), kPadId);
  std::size_t pos = 0;
  if (spec_.countries > 0) {
    // Country id in [1, countries]; mildly skewed toward low ids.
    const Index country =
        1 + std::min(rng.uniform_index(spec_.countries),
                     rng.uniform_index(spec_.countries));
    sample.history[pos++] = static_cast<std::int32_t>(country);
  }
  const Index item_base = 1 + spec_.countries;
  // The label conditions on the mean latent of the CHOSEN items (not the
  // hidden user vector): predicting it requires decoding each history
  // item's identity, which is precisely the information hash collisions
  // destroy — the mechanism behind the paper's compression-loss curves.
  std::vector<float> history_latent(static_cast<std::size_t>(d), 0.0f);
  for (const Index pick : chosen) {
    const Index item = pool[static_cast<std::size_t>(pick)];
    sample.history[pos++] =
        static_cast<std::int32_t>(item_base + item);
    const std::vector<float>& z =
        item_latents_[static_cast<std::size_t>(item)];
    for (Index j = 0; j < d; ++j) {
      history_latent[static_cast<std::size_t>(j)] += z[static_cast<std::size_t>(j)];
    }
  }
  if (!chosen.empty()) {
    // Normalize so affinity acts on a unit-scale signal regardless of
    // history length.
    float norm = 0.0f;
    for (const float v : history_latent) {
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0f) {
      for (float& v : history_latent) {
        v *= static_cast<float>(std::sqrt(static_cast<double>(d))) / norm;
      }
    }
  }

  // Label: Gumbel-argmax == one draw from softmax(affinity·<h,y> + log q).
  float best = -1e30f;
  Index best_label = 0;
  for (Index k = 0; k < spec_.output_vocab; ++k) {
    double u = rng.next_double();
    if (u < 1e-300) {
      u = 1e-300;
    }
    const float gumbel = static_cast<float>(-std::log(-std::log(u)));
    const float score =
        affinity * dot(history_latent,
                       output_latents_[static_cast<std::size_t>(k)]) +
        static_cast<float>(std::log(output_popularity_.probability(k))) +
        gumbel;
    if (score > best) {
      best = score;
      best_label = k;
    }
  }
  sample.label = static_cast<std::int32_t>(best_label);
  return sample;
}

std::vector<Index> SyntheticDataset::train_id_histogram() const {
  std::vector<Index> histogram(static_cast<std::size_t>(input_vocab()), 0);
  for (const Sample& s : train_) {
    for (const std::int32_t id : s.history) {
      ++histogram[static_cast<std::size_t>(id)];
    }
  }
  return histogram;
}

Batch make_batch(const std::vector<Sample>& samples, Index first, Index count) {
  check(first >= 0 && count > 0 &&
            first + count <= static_cast<Index>(samples.size()),
        "make_batch: range out of bounds");
  const Index seq_len = static_cast<Index>(samples[0].history.size());
  Batch batch;
  batch.inputs = IdBatch(count, seq_len);
  batch.labels.resize(static_cast<std::size_t>(count));
  for (Index b = 0; b < count; ++b) {
    const Sample& s = samples[static_cast<std::size_t>(first + b)];
    for (Index l = 0; l < seq_len; ++l) {
      batch.inputs.id(b, l) = s.history[static_cast<std::size_t>(l)];
    }
    batch.labels[static_cast<std::size_t>(b)] = s.label;
  }
  return batch;
}

Batcher::Batcher(const std::vector<Sample>& samples, Index batch_size,
                 Rng& rng)
    : samples_(samples), batch_size_(batch_size), rng_(rng.split(0xba7c)) {
  check(batch_size > 0, "batcher: batch size must be positive");
  check(!samples.empty(), "batcher: no samples");
  order_.resize(samples.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<Index>(i);
  }
  reshuffle();
}

void Batcher::reshuffle() {
  // Fisher-Yates with our deterministic Rng.
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng_.uniform_index(static_cast<Index>(i)));
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

bool Batcher::next(Batch& out) {
  const Index n = static_cast<Index>(samples_.size());
  if (cursor_ >= n) {
    return false;
  }
  const Index count = std::min(batch_size_, n - cursor_);
  const Index seq_len = static_cast<Index>(samples_[0].history.size());
  out.inputs = IdBatch(count, seq_len);
  out.labels.resize(static_cast<std::size_t>(count));
  for (Index b = 0; b < count; ++b) {
    const Sample& s =
        samples_[static_cast<std::size_t>(order_[static_cast<std::size_t>(cursor_ + b)])];
    for (Index l = 0; l < seq_len; ++l) {
      out.inputs.id(b, l) = s.history[static_cast<std::size_t>(l)];
    }
    out.labels[static_cast<std::size_t>(b)] = s.label;
  }
  cursor_ += count;
  return true;
}

Index Batcher::batches_per_epoch() const {
  const Index n = static_cast<Index>(samples_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace memcom
