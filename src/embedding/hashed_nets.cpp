#include "embedding/hashed_nets.h"

namespace memcom {

HashedNetsEmbedding::HashedNetsEmbedding(Index vocab, Index bucket_count,
                                         Index embed_dim, Rng& rng)
    : vocab_(vocab),
      embed_dim_(embed_dim),
      buckets_("hashed_nets.buckets",
               Tensor::uniform({bucket_count, 1}, rng, -0.05f, 0.05f)) {
  check(bucket_count > 0, "hashed_nets: bucket count must be positive");
  // Bucket grads are effectively dense (every token touches embed_dim
  // buckets), so use the dense optimizer path.
  buckets_.sparse = false;
}

Index HashedNetsEmbedding::bucket_of(std::int32_t id, Index column) const {
  const std::uint64_t key =
      static_cast<std::uint64_t>(id) * 0x100000001B3ULL +
      static_cast<std::uint64_t>(column);
  return static_cast<Index>(splitmix64(key) %
                            static_cast<std::uint64_t>(bucket_count()));
}

Tensor HashedNetsEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  Tensor out({input.batch, input.length, embed_dim_});
  const float* w = buckets_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    float* dst = o + i * embed_dim_;
    for (Index c = 0; c < embed_dim_; ++c) {
      dst[c] = w[bucket_of(id, c)];
    }
  }
  return out;
}

void HashedNetsEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == embed_dim_,
        "hashed_nets: bad grad shape");
  const float* g = grad_out.data();
  float* gw = buckets_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const float* src = g + i * embed_dim_;
    for (Index c = 0; c < embed_dim_; ++c) {
      gw[bucket_of(id, c)] += src[c];
    }
  }
}

}  // namespace memcom
