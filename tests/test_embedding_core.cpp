#include "embedding/embedding.h"

#include <gtest/gtest.h>

#include "embedding/factory.h"

namespace memcom {
namespace {

IdBatch batch_from(std::vector<std::int32_t> ids, Index batch, Index length) {
  IdBatch b(batch, length);
  b.ids = std::move(ids);
  return b;
}

TEST(IdBatchStruct, LayoutAndValidation) {
  IdBatch b(2, 3);
  EXPECT_EQ(b.size(), 6);
  b.id(1, 2) = 42;
  EXPECT_EQ(b.ids[5], 42);
  EXPECT_NO_THROW(b.validate(43));
  EXPECT_THROW(b.validate(42), std::runtime_error);
  b.id(0, 0) = -1;
  EXPECT_THROW(b.validate(43), std::runtime_error);
}

TEST(FullEmbedding, LookupReturnsTableRows) {
  Rng rng(71);
  FullEmbedding emb(10, 4, rng);
  const IdBatch input = batch_from({3, 7, 0, 3}, 2, 2);
  const Tensor out = emb.forward(input, false);
  EXPECT_EQ(out.shape(), (Shape{2, 2, 4}));
  for (Index c = 0; c < 4; ++c) {
    EXPECT_EQ(out.at3(0, 0, c), emb.table().value.at2(3, c));
    EXPECT_EQ(out.at3(0, 1, c), emb.table().value.at2(7, c));
    EXPECT_EQ(out.at3(1, 0, c), emb.table().value.at2(0, c));
    EXPECT_EQ(out.at3(1, 1, c), emb.table().value.at2(3, c));
  }
}

TEST(FullEmbedding, BackwardScattersAndAccumulates) {
  Rng rng(72);
  FullEmbedding emb(6, 2, rng);
  const IdBatch input = batch_from({2, 2}, 1, 2);  // same id twice
  emb.forward(input, true);
  const Tensor grad = Tensor::full({1, 2, 2}, 1.0f);
  emb.backward(grad);
  EXPECT_FLOAT_EQ(emb.table().grad.at2(2, 0), 2.0f);  // accumulated twice
  EXPECT_FLOAT_EQ(emb.table().grad.at2(3, 0), 0.0f);
  // Touched rows recorded for the sparse optimizer path.
  EXPECT_FALSE(emb.table().touched_rows.empty());
}

TEST(FullEmbedding, OutOfVocabIdRejected) {
  Rng rng(73);
  FullEmbedding emb(5, 2, rng);
  const IdBatch input = batch_from({5}, 1, 1);
  EXPECT_THROW(emb.forward(input, false), std::runtime_error);
}

TEST(FullEmbedding, ParamCountMatchesFormula) {
  Rng rng(74);
  FullEmbedding emb(100, 16, rng);
  EXPECT_EQ(emb.param_count(), 1600);
  EXPECT_EQ(emb.vocab_size(), 100);
  EXPECT_EQ(emb.output_dim(), 16);
}

TEST(FullEmbedding, LookupSingleMatchesForward) {
  Rng rng(75);
  FullEmbedding emb(10, 3, rng);
  const Tensor row = emb.lookup_single(4);
  EXPECT_EQ(row.shape(), (Shape{3}));
  for (Index c = 0; c < 3; ++c) {
    EXPECT_EQ(row[c], emb.table().value.at2(4, c));
  }
}

TEST(EmbeddingInit, KerasStyleRange) {
  Rng rng(76);
  const Tensor t = embedding_init(1000, 8, rng);
  EXPECT_GE(t.min(), -0.05f);
  EXPECT_LT(t.max(), 0.05f);
}

TEST(Factory, CreatesEveryTechnique) {
  for (const TechniqueKind kind : all_techniques()) {
    Rng rng(77);
    EmbeddingConfig config;
    config.kind = kind;
    config.vocab = 64;
    config.embed_dim = 8;
    config.knob = kind == TechniqueKind::kFactorized ||
                          kind == TechniqueKind::kReduceDim
                      ? 4
                      : 16;
    if (kind == TechniqueKind::kHashedNets) {
      config.knob = 100;
    }
    const EmbeddingPtr emb = make_embedding(config, rng);
    ASSERT_NE(emb, nullptr) << technique_name(kind);
    EXPECT_EQ(emb->vocab_size(), 64) << technique_name(kind);
    EXPECT_GT(emb->output_dim(), 0) << technique_name(kind);
  }
}

TEST(Factory, NameRoundTrip) {
  for (const TechniqueKind kind : all_techniques()) {
    EXPECT_EQ(technique_from_string(technique_name(kind)), kind);
  }
  EXPECT_THROW(technique_from_string("nonsense"), std::runtime_error);
}

TEST(Factory, ParamFormulaMatchesAllocatedStorage) {
  for (const TechniqueKind kind : all_techniques()) {
    Rng rng(78);
    EmbeddingConfig config;
    config.kind = kind;
    config.vocab = 100;
    config.embed_dim = 16;
    switch (kind) {
      case TechniqueKind::kFactorized:
        config.knob = 8;
        break;
      case TechniqueKind::kReduceDim:
        config.knob = 4;
        break;
      case TechniqueKind::kTruncateRare:
        config.knob = 30;
        break;
      case TechniqueKind::kHashedNets:
        config.knob = 333;
        break;
      case TechniqueKind::kFull:
        config.knob = 0;
        break;
      default:
        config.knob = 17;  // deliberately non-divisor hash size
    }
    const EmbeddingPtr emb = make_embedding(config, rng);
    EXPECT_EQ(emb->param_count(), embedding_param_formula(config))
        << technique_name(kind);
  }
}

TEST(Factory, FigureTechniquesExcludeBaselineAndExtensions) {
  const auto figure = figure_techniques();
  for (const TechniqueKind kind : figure) {
    EXPECT_NE(kind, TechniqueKind::kFull);
    EXPECT_NE(kind, TechniqueKind::kHashedNets);
    EXPECT_NE(kind, TechniqueKind::kWeinberger);
  }
  EXPECT_EQ(figure.size(), 9u);
  EXPECT_EQ(all_techniques().size(), 14u);
}

TEST(Factory, InvalidConfigRejected) {
  Rng rng(79);
  EmbeddingConfig config;
  config.kind = TechniqueKind::kFull;
  config.vocab = 1;  // too small
  config.embed_dim = 8;
  EXPECT_THROW(make_embedding(config, rng), std::runtime_error);
  config.vocab = 10;
  config.embed_dim = 0;
  EXPECT_THROW(make_embedding(config, rng), std::runtime_error);
}

// Shape property across every technique: [B, L] ids -> [B, L, output_dim].
class EmbeddingShapes : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(EmbeddingShapes, ForwardShape) {
  Rng rng(80);
  EmbeddingConfig config;
  config.kind = GetParam();
  config.vocab = 50;
  config.embed_dim = 12;
  config.knob = config.kind == TechniqueKind::kFactorized ||
                        config.kind == TechniqueKind::kReduceDim
                    ? 6
                    : 10;
  if (config.kind == TechniqueKind::kHashedNets) {
    config.knob = 64;
  }
  const EmbeddingPtr emb = make_embedding(config, rng);
  IdBatch input(3, 5);
  for (Index i = 0; i < input.size(); ++i) {
    input.ids[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(i % 50);
  }
  const Tensor out = emb->forward(input, false);
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.dim(1), 5);
  EXPECT_EQ(out.dim(2), emb->output_dim());
}

TEST_P(EmbeddingShapes, DeterministicUnderSeed) {
  EmbeddingConfig config;
  config.kind = GetParam();
  config.vocab = 50;
  config.embed_dim = 12;
  config.knob = config.kind == TechniqueKind::kFactorized ||
                        config.kind == TechniqueKind::kReduceDim
                    ? 6
                    : 10;
  if (config.kind == TechniqueKind::kHashedNets) {
    config.knob = 64;
  }
  Rng rng_a(81);
  Rng rng_b(81);
  const EmbeddingPtr emb_a = make_embedding(config, rng_a);
  const EmbeddingPtr emb_b = make_embedding(config, rng_b);
  IdBatch input(2, 4);
  input.ids = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(emb_a->forward(input, false).equals(emb_b->forward(input, false)));
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, EmbeddingShapes, ::testing::ValuesIn(all_techniques()),
    [](const ::testing::TestParamInfo<TechniqueKind>& info) {
      return technique_name(info.param);
    });

}  // namespace
}  // namespace memcom
