// Serving harnesses over the on-device inference engine.
//
// Both execution models share compiled plans instead of recompiling per
// worker: a CompiledModel is built ONCE per model file and every worker
// executes it through a private ExecutionContext (scratch arena, memory
// meter, optional hot-row cache). The plan's pre-dequantized buffers are
// therefore paid for once per model version, not once per thread — see
// plan_resident_bytes().
//
//   * ServingHarness — CLOSED-LOOP drain over ONE model: workers pull
//     requests off a lock-free atomic cursor as fast as they complete them.
//     Measures the peak batch-1 throughput of the fast path.
//
//   * AsyncServer — OPEN-LOOP multi-tenant pipeline: producers enqueue
//     requests (each optionally routed to a `model_id`) into a bounded
//     RequestQueue, a scheduler thread forms PER-MODEL dynamic
//     micro-batches (flushed at `max_batch` or after `max_delay_us`), and
//     worker threads execute each micro-batch through the fused run_batch
//     path. Models live in a ModelRegistry; a `swap()` there is
//     zero-downtime: micro-batches pin their model version at formation,
//     in-flight work finishes on the old version, new batches pick up the
//     new one, and the old plan (plus its mmap) is destroyed when its
//     refcount drains. Worker-side hot-row caches are rebuilt cold on the
//     first batch of a new version so stale rows can never serve.
//
// Both report real wall-clock QPS and a modeled-device QPS derived from the
// engines' simulated per-forward latency (which includes the profile's
// dispatch overhead — this is where micro-batching visibly wins; real wall
// clock on a shared host measures mostly the simulator itself). The async
// report additionally breaks requests/latency/cache down per model id.
//
// Logits are bit-identical to sequential InferenceEngine::run() on every
// path — direct, registry-served, and post-swap — cache cold or warm;
// tests/test_serving.cpp and tests/test_differential.cpp enforce this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/tensor.h"
#include "ondevice/clock.h"
#include "ondevice/engine.h"
#include "ondevice/registry.h"
#include "ondevice/request_queue.h"

namespace memcom {

// Per-model slice of a drain (async pipeline only).
struct ModelReport {
  std::string model_id;
  std::uint64_t version = 0;   // latest registry version that served traffic
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;   // micro-batches dispatched for THIS model
  double mean_batch = 0;       // requests / batches
  LatencyStats latency;        // end-to-end wall latency of this model's reqs
  double modeled_busy_ms = 0;  // max over workers of this model's busy time
  double modeled_qps = 0;
  // Peak per-worker context footprint of this model plus its shared plan —
  // what THIS tenant adds to the device, not the whole server's figure.
  double resident_mb = 0;
  RowCacheStats cache;
};

struct ServingReport {
  int threads = 0;
  std::uint64_t requests = 0;  // total forwards executed
  double wall_ms = 0;          // wall clock of the whole drain
  double qps = 0;              // requests / wall seconds (real clock)
  LatencyStats latency;        // per-request end-to-end wall latency (ms)

  // Modeled-device throughput: each worker engine is one simulated device;
  // its busy time is the sum of the simulated latencies (compute + per-op
  // dispatch) of the forwards it executed. The fleet finishes when the
  // busiest device does.
  double modeled_busy_ms = 0;  // max over workers of summed simulated ms
  double modeled_qps = 0;      // requests / modeled busy seconds

  // Async pipeline only (runs == 0 for the closed-loop harness):
  LatencyStats queue_wait;  // enqueue -> micro-batch picked up by a worker
  LatencyStats service;     // micro-batch execution wall time
  std::uint64_t batches = 0;   // micro-batches dispatched
  double mean_batch = 0;       // requests / batches

  // Hot-row cache totals across workers (enabled=false when no cache).
  RowCacheStats cache;

  // Per-model breakdown, sorted by model id (async pipeline only; empty for
  // the single-model closed-loop harness).
  std::vector<ModelReport> per_model;
};

class ServingHarness {
 public:
  // Compiles the plan ONCE and shares it across `threads` worker engines;
  // the model must outlive the harness. A nonzero `cache_budget_bytes`
  // attaches a per-worker HotRowCache (bypassed for one-hot techniques).
  ServingHarness(const MmapModel& model, const DeviceProfile& profile,
                 int threads, std::size_t cache_budget_bytes = 0);
  // Shares an EXISTING plan (e.g. one acquired from a ModelRegistry).
  ServingHarness(std::shared_ptr<const CompiledModel> compiled,
                 const DeviceProfile& profile, int threads,
                 std::size_t cache_budget_bytes = 0);

  // Drains `requests` (repeated `repeat` times) across the worker pool.
  // When `logits_out` is non-null it is resized to [requests, output_dim]
  // and filled with each request's logits (first repetition).
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, Tensor* logits_out = nullptr);

  int threads() const { return static_cast<int>(engines_.size()); }
  // Plan-derived (safe even on a degenerate pool — never dereferences a
  // worker engine).
  Index output_dim() const { return compiled_->output_dim(); }
  const CompiledModel& compiled() const { return *compiled_; }
  const InferenceEngine& engine(int i) const { return *engines_[i]; }

  // Peak resident footprint across workers (each worker meters its own
  // touches; the weight pages are shared, so the fleet-wide footprint is
  // the max, not the sum) plus the shared plan, which is resident exactly
  // once no matter how many workers reference it.
  double max_resident_megabytes() const;

  // Bytes of the shared plan's pre-dequantized buffers. Compiled once:
  // this does NOT scale with threads() (the PR-3 layer paid it per worker).
  std::size_t plan_resident_bytes() const {
    return compiled_->plan_resident_bytes();
  }

 private:
  std::shared_ptr<const CompiledModel> compiled_;
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
};

// ---------------------------------------------------------------------------
// Asynchronous multi-tenant micro-batching pipeline:
//   queue -> per-model scheduler -> workers (one ExecutionContext per
//   (worker, model id), re-bound on version swap).

struct AsyncServerConfig {
  int threads = 2;
  Index max_batch = 8;          // flush a micro-batch at this size...
  double max_delay_us = 200.0;  // ...or this long after its first request
  std::size_t queue_capacity = 1024;  // admission bound (backpressure)
  std::size_t cache_budget_bytes = 0;  // per-context hot-row cache; 0 = off
};

// What a request's future resolves to.
struct AsyncResult {
  std::vector<float> logits;  // [output_dim of the serving model]
  std::string model_id;       // which registry entry served the request
  std::uint64_t model_version = 0;  // which version of it (swap audit trail)
  double queue_wait_ms = 0;   // enqueue -> worker picked the batch up
  double service_ms = 0;      // fused micro-batch execution (wall)
  double total_ms = 0;        // enqueue -> completion
  Index batch = 0;            // size of the micro-batch this request rode in
};

// A request explicitly routed to a registry model (the serve() overload
// that drives mixed multi-model traffic).
struct RoutedRequest {
  std::string model_id;
  std::vector<std::int32_t> history;
};

class AsyncServer {
 public:
  // Model id used by the single-model convenience constructor and by the
  // submit()/serve() overloads that do not name a model.
  static constexpr const char* kDefaultModelId = "default";

  // Single-model convenience: wraps `model` in a private registry under
  // kDefaultModelId. The model must outlive the server.
  AsyncServer(const MmapModel& model, const DeviceProfile& profile,
              AsyncServerConfig config);

  // Multi-tenant: serves every model in `registry`, which must outlive the
  // server. `default_model_id` (which must be registered) answers the
  // un-routed submit()/serve() calls and output_dim().
  AsyncServer(ModelRegistry& registry, std::string default_model_id,
              const DeviceProfile& profile, AsyncServerConfig config);

  // Closes the queue, drains every accepted request, joins all threads.
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Enqueues a request; BLOCKS while the queue is at capacity
  // (backpressure). The future resolves once a worker completed the
  // request's micro-batch. The routed overload fails (check) for a model id
  // the registry does not currently hold.
  std::future<AsyncResult> submit(std::vector<std::int32_t> history);
  std::future<AsyncResult> submit(std::string model_id,
                                  std::vector<std::int32_t> history);

  // Non-blocking admission: false (and no future) when the queue is full,
  // the server is shutting down, or the model id is unknown.
  bool try_submit(std::vector<std::int32_t> history,
                  std::future<AsyncResult>* out);
  bool try_submit(std::string model_id, std::vector<std::int32_t> history,
                  std::future<AsyncResult>* out);

  // Convenience driver: submits `requests` (repeated `repeat` times) from
  // this thread — paced at `arrival_qps` when nonzero (open-loop arrivals),
  // as fast as backpressure admits otherwise — waits for every completion,
  // and aggregates the report. When `logits_out` is non-null it is filled
  // with the first repetition's logits, row r = requests[r]. All requests
  // go to the default model.
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, double arrival_qps = 0.0,
                      Tensor* logits_out = nullptr);

  // Mixed-traffic driver: like serve(), but each request names its model.
  // Output dims may differ per model, so first-repetition logits (when
  // requested) come back as one vector per request instead of a Tensor.
  ServingReport serve(const std::vector<RoutedRequest>& requests,
                      int repeat = 1, double arrival_qps = 0.0,
                      std::vector<std::vector<float>>* logits_out = nullptr);

  const AsyncServerConfig& config() const { return config_; }
  int threads() const { return config_.threads; }
  const ModelRegistry& registry() const { return *registry_; }
  const std::string& default_model_id() const { return default_model_; }
  // Default model's output width (plan-derived; never touches a worker).
  Index output_dim() const;

  // Lifetime count of requests whose futures have been resolved (including
  // failed ones). Lets external observers — e.g. a deploy driver deciding
  // when to swap() — watch progress without joining the drain.
  std::uint64_t completed_requests() const {
    return completed_.load(std::memory_order_relaxed);
  }

  // Backpressure observability (lifetime totals of the admission queue).
  std::size_t queue_capacity() const { return queue_.capacity(); }
  std::size_t queue_high_water() const { return queue_.high_water(); }
  std::uint64_t rejected() const { return queue_.rejected(); }

  // Aggregated hot-row cache counters across worker contexts since the
  // last serve() began (all counters flow through the stats mutex, so this
  // is safe to call whenever the caller holds no in-flight futures).
  RowCacheStats cache_stats() const;
  double max_resident_megabytes() const;

 private:
  struct QueuedRequest {
    std::string model_id;
    std::vector<std::int32_t> history;
    std::promise<AsyncResult> promise;
    SteadyClock::time_point enqueue_tp;
  };
  struct BatchTask {
    std::string model_id;
    // Pinned at micro-batch formation: a concurrent swap() cannot retarget
    // an in-flight batch.
    std::shared_ptr<const CompiledModel> compiled;
    std::uint64_t version = 0;
    std::vector<QueuedRequest> requests;
  };
  // Per-(worker, model) slice of the per-batch accounting below.
  struct ModelLane {
    std::uint64_t version = 0;
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::vector<double> total_ms;
    double modeled_busy_ms = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    bool cache_enabled = false;
    std::size_t cache_resident_bytes = 0;  // post-batch snapshot
    std::size_t cache_capacity_bytes = 0;  // post-batch snapshot
    double resident_mb = 0;                // post-batch snapshot
    std::size_t plan_bytes = 0;            // served plan (shared, not per worker)
  };
  // Per-batch accounting a worker appends under stats_mutex_; serve()
  // snapshots these after every future it waits on has resolved.
  struct WorkerStats {
    std::vector<double> queue_wait_ms;
    std::vector<double> service_ms;
    std::vector<double> total_ms;
    double modeled_busy_ms = 0;
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;
    std::map<std::string, ModelLane> models;
  };

  QueuedRequest make_request(std::string model_id,
                             std::vector<std::int32_t> history) const;
  // Validates config + default model and spawns the pipeline threads; the
  // shared tail of both constructors.
  void start();
  void scheduler_loop();
  void worker_loop(std::size_t worker);
  void reset_stats();
  // Non-owning view of one request of a serve() corpus: both serve()
  // overloads flatten to these so the un-routed one does not have to copy
  // every history into a temporary RoutedRequest just to attach the
  // default model id (submit() copies per repetition anyway).
  struct RequestRef {
    const std::string* model_id = nullptr;
    const std::vector<std::int32_t>* history = nullptr;
  };
  ServingReport drive(const std::vector<RequestRef>& requests, int repeat,
                      double arrival_qps,
                      std::vector<std::vector<float>>* logits_out);

  AsyncServerConfig config_;
  DeviceProfile profile_;
  // Single-model mode owns its registry; multi-tenant mode points at the
  // caller's.
  std::unique_ptr<ModelRegistry> owned_registry_;
  ModelRegistry* registry_ = nullptr;
  std::string default_model_;
  RequestQueue<QueuedRequest> queue_;     // producers -> scheduler
  RequestQueue<BatchTask> dispatch_;      // scheduler -> workers
  std::vector<WorkerStats> worker_stats_;
  mutable std::mutex stats_mutex_;
  std::atomic<std::uint64_t> completed_{0};
  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace memcom
