// Ordered container of layers with forward/backward over the whole stack.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace memcom {

class Sequential {
 public:
  Sequential() = default;

  // Adds a layer and returns a reference to it (typed, for configuration).
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool training);
  Tensor backward(const Tensor& grad_out);

  ParamRefs params();

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace memcom
