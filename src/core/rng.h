// Seeded, deterministic pseudo-random number generation.
//
// All randomness in the library flows through `Rng` so that every experiment,
// dataset, and initializer is reproducible from a single seed. Distribution
// sampling (uniform, normal) is implemented by hand rather than with
// <random> distribution objects, whose output is not specified by the
// standard and differs across standard libraries.
#pragma once

#include <cstdint>
#include <random>

namespace memcom {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  // Uniform in [0, 1). 53-bit resolution.
  double next_double() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  float next_float() { return static_cast<float>(next_double()); }

  // Uniform in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // half is cached).
  float normal();

  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  // Uniform integer in [0, n). Rejection-free modulo bias is negligible for
  // the n (< 2^32) used here, but we use Lemire's method anyway.
  std::uint64_t uniform_u64(std::uint64_t n);

  std::int64_t uniform_index(std::int64_t n) {
    return static_cast<std::int64_t>(uniform_u64(static_cast<std::uint64_t>(n)));
  }

  bool bernoulli(double p) { return next_double() < p; }

  // Derives an independent generator for a named sub-stream. Mixing is via
  // splitmix64 of (state sample, stream id), giving decorrelated children.
  Rng split(std::uint64_t stream);

 private:
  std::mt19937_64 engine_;
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

// splitmix64 finalizer; exposed for hashing use elsewhere.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace memcom
