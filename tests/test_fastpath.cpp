// Enforcement tests for the zero-allocation inference fast path:
//   * steady-state run() performs NO string-keyed tensor lookups (the
//     execution plan resolves every handle at construction);
//   * steady-state run_view() performs NO heap allocations (scratch arena);
//   * run_batch() is bit-identical to sequential run() for every technique;
//   * the memory meter's resident-byte accounting is unchanged by the fast
//     path (batched and sequential runs meter the same pages).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <vector>

#include "ondevice/engine.h"
#include "repro/model.h"
#include "test_util.h"

// --- Global allocation hook -------------------------------------------------
// Counts operator-new calls while g_count_allocs is set. Replacing the
// global operator new is binary-wide, so the counter is only armed around
// the measured region.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace memcom {
namespace {

class FastPathTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_fastpath_" + tag + ".mcm");
    paths_.push_back(p);
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }
  std::vector<std::filesystem::path> paths_;
};

ModelConfig small_config(TechniqueKind kind, ModelArch arch) {
  ModelConfig config;
  config.embedding.kind = kind;
  config.embedding.vocab = 120;
  config.embedding.embed_dim = 16;
  switch (kind) {
    case TechniqueKind::kFactorized:
    case TechniqueKind::kReduceDim:
      config.embedding.knob = 8;
      break;
    case TechniqueKind::kFull:
      config.embedding.knob = 0;
      break;
    default:
      config.embedding.knob = 24;
  }
  config.arch = arch;
  config.output_vocab = 40;
  config.seed = 1234;
  return config;
}

std::vector<std::vector<std::int32_t>> sample_histories() {
  return {
      {5, 17, 42, 100, 7, 0, 0, 0},
      {1, 2, 3, 4},
      {99, 98, 97, 96, 95, 94, 93, 92},
      {11, 0, 0, 0, 0, 0, 0, 0},
      {0, 0, 0, 0},  // fully padded
      {64, 32, 16, 8, 4, 2},
  };
}

constexpr TechniqueKind kLookupTechniques[] = {
    TechniqueKind::kFull,        TechniqueKind::kMemcom,
    TechniqueKind::kMemcomBias,  TechniqueKind::kQrMult,
    TechniqueKind::kQrConcat,    TechniqueKind::kNaiveHash,
    TechniqueKind::kDoubleHash,  TechniqueKind::kFactorized,
    TechniqueKind::kReduceDim,   TechniqueKind::kTruncateRare,
    TechniqueKind::kWeinberger,
};

TEST_F(FastPathTest, SteadyStateRunPerformsNoEntryLookups) {
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kWeinberger,
        TechniqueKind::kFactorized}) {
    ModelConfig config = small_config(kind, ModelArch::kClassification);
    RecModel model(config);
    const std::string path =
        temp_path("lookups_" + std::string(technique_name(kind)));
    model.export_mcm(path);

    const MmapModel mapped(path);
    InferenceEngine engine(mapped, coreml_profile("cpuOnly"));
    // Plan compilation is allowed (and expected) to resolve names...
    EXPECT_GT(mapped.entry_lookup_count(), 0u) << technique_name(kind);
    const std::uint64_t after_compile = mapped.entry_lookup_count();
    // ...but steady-state forwards must not touch the string directory.
    const auto histories = sample_histories();
    for (const auto& history : histories) {
      engine.run(history);
      engine.run_view(history);
    }
    engine.run_batch(histories);
    engine.benchmark(histories.front(), 5);
    EXPECT_EQ(mapped.entry_lookup_count(), after_compile)
        << technique_name(kind);
  }
}

TEST_F(FastPathTest, SteadyStateRunViewIsAllocationFree) {
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kWeinberger}) {
    ModelConfig config = small_config(kind, ModelArch::kClassification);
    RecModel model(config);
    const std::string path =
        temp_path("allocs_" + std::string(technique_name(kind)));
    model.export_mcm(path);

    const MmapModel mapped(path);
    InferenceEngine engine(mapped, tflite_profile());
    const auto histories = sample_histories();
    // Warm up: the first runs fault weight pages into the meter's page set
    // (node allocations) — steady state begins once the set is populated.
    for (int i = 0; i < 2; ++i) {
      for (const auto& history : histories) {
        engine.run_view(history);
      }
    }
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < 3; ++i) {
      for (const auto& history : histories) {
        engine.run_view(history);
      }
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
        << technique_name(kind);
  }
}

TEST_F(FastPathTest, RunBatchLogitsBitIdenticalToSequentialRuns) {
  for (const TechniqueKind kind : kLookupTechniques) {
    for (const ModelArch arch :
         {ModelArch::kClassification, ModelArch::kRanking}) {
      ModelConfig config = small_config(kind, arch);
      RecModel model(config);
      const std::string path = temp_path(
          "batch_" + std::string(technique_name(kind)) +
          (arch == ModelArch::kClassification ? "_cls" : "_rank"));
      model.export_mcm(path);

      const MmapModel mapped(path);
      InferenceEngine sequential(mapped, coreml_profile("all"));
      InferenceEngine batched(mapped, coreml_profile("all"));
      const auto histories = sample_histories();
      const BatchResult batch = batched.run_batch(histories);
      ASSERT_EQ(batch.batch, static_cast<Index>(histories.size()));
      for (std::size_t b = 0; b < histories.size(); ++b) {
        const Tensor expected = sequential.run(histories[b]).logits;
        for (Index c = 0; c < expected.numel(); ++c) {
          EXPECT_EQ(batch.logits.at2(static_cast<Index>(b), c), expected[c])
              << technique_name(kind) << " request " << b << " logit " << c;
        }
      }
    }
  }
}

TEST_F(FastPathTest, BatchAmortizesDispatchOverhead) {
  ModelConfig config =
      small_config(TechniqueKind::kMemcom, ModelArch::kClassification);
  RecModel model(config);
  const std::string path = temp_path("amortize");
  model.export_mcm(path);
  const MmapModel mapped(path);
  // tflite profile has a nonzero per-op dispatch overhead.
  InferenceEngine engine(mapped, tflite_profile());
  const auto histories = sample_histories();
  double sequential_ms = 0.0;
  Index per_run_ops = 0;
  for (const auto& history : histories) {
    const InferenceResult r = engine.run(history);
    sequential_ms += r.total_ms;
    per_run_ops = r.op_count;
  }
  const BatchResult batch = engine.run_batch(histories);
  // One fused dispatch for the batch: same per-graph op count, and the
  // simulated batch latency drops below the sequential sum because (B-1)
  // dispatch charges disappear.
  EXPECT_EQ(batch.op_count, per_run_ops);
  EXPECT_LT(batch.total_ms, sequential_ms);
}

TEST_F(FastPathTest, MeterAccountingUnchangedByBatchedFastPath) {
  for (const TechniqueKind kind : kLookupTechniques) {
    ModelConfig config = small_config(kind, ModelArch::kRanking);
    RecModel model(config);
    const std::string path =
        temp_path("meter_" + std::string(technique_name(kind)));
    model.export_mcm(path);

    const MmapModel mapped(path);
    InferenceEngine sequential(mapped, tflite_profile());
    InferenceEngine batched(mapped, tflite_profile());
    const auto histories = sample_histories();
    for (const auto& history : histories) {
      sequential.run(history);
    }
    batched.run_batch(histories);
    EXPECT_EQ(sequential.meter().touched_pages(),
              batched.meter().touched_pages())
        << technique_name(kind);
    EXPECT_EQ(sequential.meter().weight_resident_bytes(),
              batched.meter().weight_resident_bytes())
        << technique_name(kind);
    EXPECT_EQ(sequential.meter().activation_peak_bytes(),
              batched.meter().activation_peak_bytes())
        << technique_name(kind);
  }
}

TEST_F(FastPathTest, BenchmarkReportsOrderedPercentiles) {
  ModelConfig config =
      small_config(TechniqueKind::kMemcom, ModelArch::kRanking);
  RecModel model(config);
  const std::string path = temp_path("percentiles");
  model.export_mcm(path);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, tflite_profile());
  const LatencyStats stats = engine.benchmark(sample_histories().front(), 50);
  EXPECT_EQ(stats.runs, 50);
  EXPECT_GT(stats.min_ms, 0.0);
  EXPECT_LE(stats.min_ms, stats.p50_ms);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_LE(stats.min_ms, stats.mean_ms);
  EXPECT_GE(stats.max_ms, stats.mean_ms);

  // Degenerate single-run distribution: every statistic collapses to the
  // one sample (this also covers the old 1e30 sentinel-min bug).
  const LatencyStats one = engine.benchmark(sample_histories().front(), 1);
  EXPECT_EQ(one.runs, 1);
  EXPECT_DOUBLE_EQ(one.min_ms, one.max_ms);
  EXPECT_DOUBLE_EQ(one.min_ms, one.mean_ms);
  EXPECT_DOUBLE_EQ(one.min_ms, one.p50_ms);
  EXPECT_DOUBLE_EQ(one.min_ms, one.p99_ms);
}

TEST_F(FastPathTest, QuantizedModelsUseTheSamePlanMachinery) {
  // Quantized blobs cannot take the direct-float shortcut; the dequantizing
  // fallback must still be batch-consistent and meter-identical.
  ModelConfig config =
      small_config(TechniqueKind::kMemcom, ModelArch::kClassification);
  RecModel model(config);
  const std::string path = temp_path("quant");
  model.export_mcm(path, DType::kI8);
  const MmapModel mapped(path);
  InferenceEngine sequential(mapped, coreml_profile("all"));
  InferenceEngine batched(mapped, coreml_profile("all"));
  const auto histories = sample_histories();
  const BatchResult batch = batched.run_batch(histories);
  for (std::size_t b = 0; b < histories.size(); ++b) {
    const Tensor expected = sequential.run(histories[b]).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(batch.logits.at2(static_cast<Index>(b), c), expected[c]);
    }
  }
  EXPECT_EQ(sequential.meter().weight_resident_bytes(),
            batched.meter().weight_resident_bytes());
}

}  // namespace
}  // namespace memcom
