// Deterministic top-k selection + full-catalog scoring over a COMPRESSED
// item table.
//
// The session workload's expensive step is ranking the session vector
// against the entire item catalog (ROADMAP item 3, after *Efficient
// On-Device Session-Based Recommendation*). That scan is itself a
// compression target: CatalogScorer walks an item-major [items, dim] table
// in its stored form (f32/f16/i8/i4/i4g) through the KernelSet dot_span
// kernel, so the catalog is never materialized as f32 beyond a small fixed
// stack buffer inside the kernel.
//
// Ordering contract (shared with gumbel_top_k in core/sampling.cpp and
// enforced against a full-sort reference by tests/test_topk.cpp +
// tests/test_differential.cpp): higher score first, and on EXACTLY equal
// scores the LOWER id wins. Float == treats -0.0 and 0.0 as equal, so ±0
// ties also resolve by id. Scores must be NaN-free (quantized logits are).
// Because the ordering is total, topk_select is bit-identical to sorting
// the whole catalog and truncating — across kernel families and shard
// counts.
#pragma once

#include <algorithm>
#include <vector>

#include "core/tensor.h"
#include "ondevice/kernels.h"
#include "ondevice/quantize.h"

namespace memcom {

struct ScoredId {
  float score = 0.0f;
  Index id = 0;
};

// The one comparator both top-k paths and gumbel_top_k agree on: true when
// `a` ranks strictly ahead of `b`.
inline bool topk_better(const ScoredId& a, const ScoredId& b) {
  return a.score > b.score || (a.score == b.score && a.id < b.id);
}

// One candidate into a bounded heap whose top is the WORST kept entry
// (std::push_heap builds a max-heap under its comparator, and under
// topk_better the "maximum" is the element that beats nobody). Because
// topk_better is a strict TOTAL order, the final heap contents — and hence
// the sorted result — are independent of offer order: this is what makes
// the pruned catalog scan's nprobe == num_clusters leg provably identical
// to the exact full scan (see ondevice/catalog_index.h).
inline void topk_offer(std::vector<ScoredId>& heap, Index k, ScoredId cand) {
  if (static_cast<Index>(heap.size()) < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), topk_better);
  } else if (topk_better(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), topk_better);
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), topk_better);
  }
}

// Bounded-heap selection: O(n log k), no allocation beyond the k-element
// result. Returns min(k, n) entries sorted best-first.
std::vector<ScoredId> topk_select(const float* scores, Index n, Index k);

// Full-sort reference (O(n log n)); topk_select must match it exactly.
std::vector<ScoredId> topk_full_sort(const float* scores, Index n, Index k);

// Codec view of a heap-owned QuantizedTensor (pre-splits the i4g scales
// header exactly like CompiledModel::resolve does for mmap'd tensors). The
// tensor must outlive the returned view.
SpanSrc make_span_src(const QuantizedTensor& q);

// Scores a float query vector against every row of an item-major
// [items, dim] catalog kept in compressed form. Rows are streamed through
// the selected family's dot_span — bit-identical scalar vs AVX2 — and
// top_k() feeds them straight into the bounded heap, so neither the
// catalog nor the score vector is ever materialized.
class CatalogScorer {
 public:
  // Borrows `catalog`; it must outlive the scorer.
  CatalogScorer(const QuantizedTensor& catalog, const KernelSet& kernels);
  // Zero-copy view form (e.g. over a CompiledModel output table).
  CatalogScorer(const SpanSrc& src, Index items, Index dim,
                std::size_t resident_bytes, const KernelSet& kernels);

  Index items() const { return items_; }
  Index dim() const { return dim_; }
  // Compressed bytes the scan touches — the catalog's entire stored
  // payload (every row is read once per query). This is the "catalog
  // residency" column of the session bench.
  std::size_t resident_bytes() const { return resident_bytes_; }
  // Codec view + kernel family, shared with PrunedCatalogScorer so the
  // pruned scan scores rows through the exact same dot_span path.
  const SpanSrc& src() const { return src_; }
  const KernelSet& kernels() const { return *kernels_; }

  // out[i] = <row i, query> for all items.
  void score_all(const float* query, float* out) const;
  // Best k ids without materializing the score vector.
  std::vector<ScoredId> top_k(const float* query, Index k) const;

 private:
  SpanSrc src_;
  Index items_ = 0;
  Index dim_ = 0;
  std::size_t resident_bytes_ = 0;
  const KernelSet* kernels_ = nullptr;
};

}  // namespace memcom
