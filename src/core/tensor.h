// Dense float32 tensor with value semantics.
//
// Row-major contiguous storage, up to 4 dimensions (the networks in this
// library never need more). Ops live in core/ops.h; Tensor itself only owns
// storage, shape bookkeeping, initializers, and in-place arithmetic that the
// optimizers need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace memcom {

using Index = std::int64_t;
using Shape = std::vector<Index>;

std::string shape_to_string(const Shape& shape);
Index shape_numel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor from_vector(Shape shape, std::vector<float> values);
  // i.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  // i.i.d. U[lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  // Glorot/Xavier uniform for a [fan_in, fan_out] weight matrix.
  static Tensor glorot(Index fan_in, Index fan_out, Rng& rng);

  const Shape& shape() const { return shape_; }
  Index ndim() const { return static_cast<Index>(shape_.size()); }
  // Negative axes count from the end, as in NumPy.
  Index dim(Index axis) const;
  Index numel() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // Flat element access (unchecked in release-hot paths; operator[] checks
  // nothing, at() checks bounds).
  float& operator[](Index i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](Index i) const { return data_[static_cast<std::size_t>(i)]; }
  float& at(Index i);
  float at(Index i) const;

  // 2-D / 3-D accessors (row-major). Caller is responsible for ndim.
  float& at2(Index r, Index c) { return data_[static_cast<std::size_t>(r * shape_[1] + c)]; }
  float at2(Index r, Index c) const { return data_[static_cast<std::size_t>(r * shape_[1] + c)]; }
  float& at3(Index a, Index b, Index c) {
    return data_[static_cast<std::size_t>((a * shape_[1] + b) * shape_[2] + c)];
  }
  float at3(Index a, Index b, Index c) const {
    return data_[static_cast<std::size_t>((a * shape_[1] + b) * shape_[2] + c)];
  }

  // Reinterprets the same data under a new shape (numel must match).
  void reshape(Shape new_shape);
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  // this += other (same shape).
  void add_(const Tensor& other);
  // this += alpha * other (same shape).
  void axpy_(float alpha, const Tensor& other);
  // this *= alpha.
  void scale_(float alpha);
  // Elementwise this *= other (same shape).
  void mul_(const Tensor& other);

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float l2_norm() const;
  float abs_max() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Exact elementwise equality (for serialization round-trip tests).
  bool equals(const Tensor& other) const;
  // max_i |a_i - b_i| <= tol, shapes equal.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  std::string shape_string() const { return shape_to_string(shape_); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace memcom
