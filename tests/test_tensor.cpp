#include "core/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace memcom {
namespace {

TEST(Tensor, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 5, 6});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(1), 5);
  EXPECT_EQ(t.dim(2), 6);
  EXPECT_EQ(t.dim(-1), 6);
  EXPECT_EQ(t.dim(-3), 4);
  EXPECT_THROW(t.dim(3), std::runtime_error);
  EXPECT_THROW(t.dim(-4), std::runtime_error);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({3, 2}, 2.5f);
  for (Index i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(Tensor, FromVectorPreservesValuesAndChecksCount) {
  const Tensor t = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_EQ(t.at2(1, 1), 4.0f);
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), std::runtime_error);
}

TEST(Tensor, At2At3RowMajorLayout) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
  Tensor m({3, 4});
  m.at2(2, 1) = 7.0f;
  EXPECT_EQ(m[2 * 4 + 1], 7.0f);
}

TEST(Tensor, BoundsCheckedAt) {
  Tensor t({4});
  EXPECT_NO_THROW(t.at(3));
  EXPECT_THROW(t.at(4), std::runtime_error);
  EXPECT_THROW(t.at(-1), std::runtime_error);
}

TEST(Tensor, ReshapePreservesDataRequiresSameNumel) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::runtime_error);
  const Tensor r = t.reshaped({6});
  EXPECT_EQ(r.ndim(), 1);
  EXPECT_EQ(r[5], 6.0f);
  EXPECT_EQ(t.ndim(), 2);  // reshaped() does not mutate
}

TEST(Tensor, RandnUniformDeterministicUnderSeed) {
  Rng rng_a(123);
  Rng rng_b(123);
  const Tensor a = Tensor::randn({32, 8}, rng_a);
  const Tensor b = Tensor::randn({32, 8}, rng_b);
  EXPECT_TRUE(a.equals(b));
  Rng rng_c(124);
  const Tensor c = Tensor::randn({32, 8}, rng_c);
  EXPECT_FALSE(a.equals(c));
}

TEST(Tensor, UniformRespectsRange) {
  Rng rng(7);
  const Tensor t = Tensor::uniform({1000}, rng, -0.25f, 0.5f);
  EXPECT_GE(t.min(), -0.25f);
  EXPECT_LT(t.max(), 0.5f);
  // The sample mean should be near the midpoint.
  EXPECT_NEAR(t.mean(), 0.125f, 0.03f);
}

TEST(Tensor, GlorotLimit) {
  Rng rng(7);
  const Tensor t = Tensor::glorot(100, 50, rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  EXPECT_GE(t.min(), -limit);
  EXPECT_LE(t.max(), limit);
  EXPECT_EQ(t.dim(0), 100);
  EXPECT_EQ(t.dim(1), 50);
}

TEST(Tensor, AddSubScaleMul) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[0], 11.0f);
  a.axpy_(-1.0f, b);
  EXPECT_EQ(a[2], 3.0f);
  a.scale_(2.0f);
  EXPECT_EQ(a[1], 4.0f);
  a.mul_(b);
  EXPECT_EQ(a[0], 20.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  Tensor a({2, 2});
  const Tensor b({4});
  EXPECT_THROW(a.add_(b), std::runtime_error);
  EXPECT_THROW(a.mul_(b), std::runtime_error);
  EXPECT_THROW(a.axpy_(1.0f, b), std::runtime_error);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({4}, {-1, 2, -3, 4});
  EXPECT_EQ(t.sum(), 2.0f);
  EXPECT_EQ(t.mean(), 0.5f);
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.abs_max(), 4.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(30.0f), 1e-5f);
}

TEST(Tensor, ReductionsOnEmptyThrow) {
  Tensor t;
  EXPECT_THROW(t.mean(), std::runtime_error);
  EXPECT_THROW(t.min(), std::runtime_error);
  EXPECT_THROW(t.max(), std::runtime_error);
}

TEST(Tensor, AllcloseToleranceAndShape) {
  const Tensor a = Tensor::from_vector({2}, {1.0f, 2.0f});
  const Tensor b = Tensor::from_vector({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(a.allclose(b, 1e-5f));
  EXPECT_FALSE(a.allclose(b, 1e-7f));
  const Tensor c = Tensor::from_vector({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(a.allclose(c));
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor({2, -1}), std::runtime_error);
}

TEST(Tensor, ShapeToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
  Tensor t({5});
  EXPECT_EQ(t.shape_string(), "[5]");
}

TEST(Tensor, ZeroDimensionTensorHasZeroElements) {
  Tensor t({0, 8});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace memcom
