// Weight quantization for the exported on-device model (.mcm).
//
// Reproduces the paper's A.2 study: linear (CoreML-style) quantization of
// trained weights to fp16 / int8 / int4. Quantization is per-tensor
// symmetric: q = round(x / scale), scale = max|x| / qmax.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace memcom {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kI8 = 2,
  kI4 = 3,
};

const char* dtype_name(DType dtype);
DType dtype_from_bits(int bits);  // 32/16/8/4
int dtype_bits(DType dtype);

// Bytes needed to store `count` elements of `dtype` (int4 packs two
// elements per byte, rounded up).
std::size_t packed_byte_size(DType dtype, std::size_t count);

struct QuantizedTensor {
  DType dtype = DType::kF32;
  Shape shape;
  float scale = 1.0f;  // 1.0 for f32/f16
  std::vector<std::uint8_t> payload;

  Index numel() const { return shape_numel(shape); }
};

QuantizedTensor quantize(const Tensor& tensor, DType dtype);
Tensor dequantize(const QuantizedTensor& quantized);

// Dequantizes `count` elements starting at `offset` straight from a raw
// payload pointer (the zero-copy path the mmap engine uses for row lookups).
void dequantize_span(DType dtype, float scale, const std::uint8_t* payload,
                     Index offset, Index count, float* out);

// IEEE 754 half-precision conversions (round-to-nearest-even).
std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t half);

// Worst-case absolute rounding error for a tensor quantized at `scale`
// (scale/2 for i8/i4); used by tests.
float quantization_error_bound(DType dtype, float scale, float abs_max);

}  // namespace memcom
