#include "repro/trainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "privacy/dp_sgd.h"

namespace memcom {

namespace {

std::vector<Sample> truncated_train_split(const SyntheticDataset& data,
                                          double fraction) {
  const auto& full = data.train();
  const Index keep = std::max<Index>(
      1, static_cast<Index>(static_cast<double>(full.size()) * fraction));
  return {full.begin(), full.begin() + keep};
}

}  // namespace

EvalResult evaluate_model(RecModel& model, const SyntheticDataset& data,
                          Index ndcg_k) {
  const auto& eval = data.eval();
  check(!eval.empty(), "evaluate: empty eval split");
  const Index chunk = 256;
  const Index n = static_cast<Index>(eval.size());

  Tensor all_scores({n, model.output_vocab()});
  std::vector<Index> all_labels(static_cast<std::size_t>(n));
  SoftmaxCrossEntropy loss;
  double loss_total = 0.0;
  Index loss_batches = 0;
  for (Index first = 0; first < n; first += chunk) {
    const Index count = std::min(chunk, n - first);
    const Batch batch = make_batch(eval, first, count);
    const Tensor logits = model.forward(batch.inputs, /*training=*/false);
    loss_total += loss.forward(logits, batch.labels);
    ++loss_batches;
    for (Index r = 0; r < count; ++r) {
      all_labels[static_cast<std::size_t>(first + r)] =
          batch.labels[static_cast<std::size_t>(r)];
      for (Index c = 0; c < model.output_vocab(); ++c) {
        all_scores.at2(first + r, c) = logits.at2(r, c);
      }
    }
  }
  EvalResult result;
  result.accuracy = accuracy(all_scores, all_labels);
  result.top5_accuracy =
      topk_accuracy(all_scores, all_labels,
                    std::min<Index>(5, model.output_vocab()));
  result.ndcg = ndcg_at_k(all_scores, all_labels,
                          std::min(ndcg_k, model.output_vocab()));
  result.mrr = mrr(all_scores, all_labels);
  result.mean_loss = loss_total / static_cast<double>(loss_batches);
  return result;
}

EvalResult train_and_evaluate(RecModel& model, const SyntheticDataset& data,
                              const TrainConfig& config) {
  const std::vector<Sample> train =
      truncated_train_split(data, config.train_fraction);
  Rng rng(config.seed);
  Batcher batcher(train, config.batch_size, rng);
  const auto optimizer = make_optimizer(config.optimizer,
                                        config.learning_rate);
  const ParamRefs params = model.params();
  SoftmaxCrossEntropy loss;

  for (Index epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    Index batches = 0;
    Batch batch;
    while (batcher.next(batch)) {
      const Tensor logits = model.forward(batch.inputs, /*training=*/true);
      epoch_loss += loss.forward(logits, batch.labels);
      ++batches;
      model.backward(loss.backward());
      optimizer->step(params);
      Optimizer::zero_grad(params);
    }
    batcher.reshuffle();
    if (config.verbose && config.log != nullptr) {
      (*config.log) << "  epoch " << (epoch + 1) << "/" << config.epochs
                    << " train_loss=" << epoch_loss / std::max<Index>(1, batches)
                    << "\n";
    }
  }
  return evaluate_model(model, data, config.ndcg_k);
}

EvalResult train_dp_and_evaluate(RecModel& model, const SyntheticDataset& data,
                                 const TrainConfig& config, double clip_norm,
                                 double noise_multiplier) {
  const std::vector<Sample> train =
      truncated_train_split(data, config.train_fraction);
  Rng rng(config.seed);
  Batcher batcher(train, config.batch_size, rng);
  const auto optimizer = make_optimizer(config.optimizer,
                                        config.learning_rate);
  const ParamRefs params = model.params();
  SoftmaxCrossEntropy loss;
  DpSgdAggregator aggregator(clip_norm, noise_multiplier, rng.split(0xd9));

  for (Index epoch = 0; epoch < config.epochs; ++epoch) {
    Batch batch;
    while (batcher.next(batch)) {
      aggregator.begin_batch(params);
      // Per-example gradients: microbatches of one.
      for (Index r = 0; r < batch.inputs.batch; ++r) {
        IdBatch single(1, batch.inputs.length);
        for (Index l = 0; l < batch.inputs.length; ++l) {
          single.id(0, l) = batch.inputs.id(r, l);
        }
        const Tensor logits = model.forward(single, /*training=*/true);
        loss.forward(logits, {batch.labels[static_cast<std::size_t>(r)]});
        model.backward(loss.backward());
        aggregator.accumulate_example(params);
        Optimizer::zero_grad(params);
      }
      aggregator.finalize_into_grads(params);
      optimizer->step(params);
      Optimizer::zero_grad(params);
    }
    batcher.reshuffle();
  }
  return evaluate_model(model, data, config.ndcg_k);
}

PairwiseResult train_pairwise_and_evaluate(PairwiseRankModel& model,
                                           const SyntheticDataset& data,
                                           const TrainConfig& config) {
  const std::vector<Sample> train =
      truncated_train_split(data, config.train_fraction);
  Rng rng(config.seed);
  Batcher batcher(train, config.batch_size, rng);
  const auto optimizer = make_optimizer(config.optimizer,
                                        config.learning_rate);
  const ParamRefs params = model.params();
  Rng negative_rng = rng.split(0x9e9);
  const Index item_count = data.output_vocab();

  PairwiseResult result;
  double loss_total = 0.0;
  double accuracy_total = 0.0;
  Index batches = 0;
  for (Index epoch = 0; epoch < config.epochs; ++epoch) {
    Batch batch;
    while (batcher.next(batch)) {
      std::vector<Index> preferred = batch.labels;
      std::vector<Index> other(preferred.size());
      for (std::size_t i = 0; i < other.size(); ++i) {
        Index negative = negative_rng.uniform_index(item_count);
        if (negative == preferred[i]) {
          negative = (negative + 1) % item_count;
        }
        other[i] = negative;
      }
      float batch_accuracy = 0.0f;
      loss_total += model.train_pair_batch(batch.inputs, preferred, other,
                                           &batch_accuracy);
      accuracy_total += batch_accuracy;
      ++batches;
      optimizer->step(params);
      Optimizer::zero_grad(params);
    }
    batcher.reshuffle();
  }
  result.mean_loss = loss_total / std::max<Index>(1, batches);
  result.pairwise_accuracy = accuracy_total / std::max<Index>(1, batches);

  // Evaluation: rank the full item catalog per user, nDCG on the held-out
  // label.
  const auto& eval = data.eval();
  const Index n = static_cast<Index>(eval.size());
  Tensor scores({n, item_count});
  std::vector<Index> labels(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const Batch single = make_batch(eval, r, 1);
    const Tensor row = model.score_all(single.inputs);
    for (Index c = 0; c < item_count; ++c) {
      scores.at2(r, c) = row.at2(0, c);
    }
    labels[static_cast<std::size_t>(r)] = single.labels[0];
  }
  result.ndcg =
      ndcg_at_k(scores, labels, std::min(config.ndcg_k, item_count));
  return result;
}

}  // namespace memcom
