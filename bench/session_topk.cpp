// Session top-k catalog-scan benchmark: the full-catalog scoring step of
// session-based next-item serving, isolated from the serving pipeline.
//
// An item-major [items, dim] catalog is exported at each precision rung
// (f32 / f16 / i8 / i4 / i4g) and scanned IN COMPRESSED FORM by
// CatalogScorer through the dispatched dot_span kernel. Per rung the bench
// records, against the f32 full-sort reference:
//   * recall@k        — fraction of the reference top-k ids the compressed
//                       scan recovers (ranking loss from quantization; the
//                       scan itself is deterministic);
//   * scan latency    — per-query wall time of score-all + bounded-heap
//                       top-k (p50/p95/mean over the query set);
//   * catalog bytes   — the compressed payload the scan touches per query
//                       (the "catalog residency" compression target).
//
// A second phase sweeps the clustered PRUNED scan per rung: a deterministic
// k-means index over the rung's compressed catalog, probed at increasing
// nprobe, recording recall@k against the SAME rung's exact scan plus the
// compressed bytes actually touched — the recall-vs-bytes-scanned frontier
// that picks an operating point (nprobe == clusters reproduces the exact
// scan bit-for-bit, so the frontier always ends at recall 1.0).
//
//   ./bench_session_topk                 # default scale
//   ./bench_session_topk --smoke         # tiny catalog, few queries
//   ./bench_session_topk --items 100000 --dim 64 --queries 256 --topk 20
//   ./bench_session_topk --clusters 256  # pruned-phase cell count
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/catalog_index.h"
#include "ondevice/engine.h"
#include "ondevice/kernels.h"
#include "ondevice/quantize.h"
#include "ondevice/topk.h"

using namespace memcom;

namespace {

struct RungResult {
  std::string dtype;
  double recall_at_k = 0;
  LatencyStats scan;
  std::size_t resident_bytes = 0;
  double bytes_ratio_vs_f32 = 0;
};

// One point on the pruned frontier: a (dtype, nprobe) operating point with
// its recall against the same rung's exact scan and the fraction of the
// compressed catalog it actually read.
struct PrunedResult {
  std::string dtype;
  Index clusters = 0;
  Index nprobe = 0;
  double recall_at_k = 0;
  LatencyStats scan;
  double mean_scanned_bytes = 0;
  double bytes_fraction = 0;
};

double intersection_recall(const std::vector<ScoredId>& got,
                           const std::vector<ScoredId>& want) {
  if (want.empty()) {
    return 1.0;
  }
  std::size_t hits = 0;
  for (const ScoredId& w : want) {
    for (const ScoredId& g : got) {
      if (g.id == w.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(want.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const Index items = flags.get_int("items", smoke ? 2000 : 50000);
  const Index dim = flags.get_int("dim", smoke ? 16 : 64);
  const int queries = static_cast<int>(flags.get_int("queries", smoke ? 32 : 128));
  const Index k = flags.get_int("topk", 10);
  const Index clusters = flags.get_int("clusters", smoke ? 32 : 256);
  const std::string json_path =
      flags.get_string("out", "BENCH_session_topk.json");

  std::cout << "session top-k catalog scan: items=" << items << " dim=" << dim
            << " queries=" << queries << " k=" << k << " clusters=" << clusters
            << " kernels=" << select_kernels().name << "\n\n";

  // Anchored mixture rather than pure isotropic noise: real item-embedding
  // catalogs are clustered (genre/brand/popularity structure), and that
  // locality is exactly what the pruned phase's k-means exploits. --anchors 0
  // falls back to the isotropic catalog.
  const Index anchors = flags.get_int("anchors", 64);
  Rng rng(4242);
  Tensor catalog_f32 = Tensor::randn({items, dim}, rng, 0.3f);
  if (anchors > 0) {
    const Tensor anchor_table = Tensor::randn({anchors, dim}, rng, 1.0f);
    for (Index i = 0; i < items; ++i) {
      const float* a = anchor_table.data() +
                       static_cast<std::size_t>(i % anchors) * dim;
      float* row = catalog_f32.data() + static_cast<std::size_t>(i) * dim;
      for (Index d = 0; d < dim; ++d) {
        row[d] += a[d];
      }
    }
  }
  std::vector<std::vector<float>> query_vecs;
  query_vecs.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    std::vector<float> v(static_cast<std::size_t>(dim));
    for (float& x : v) {
      x = rng.uniform(-1.0f, 1.0f);
    }
    query_vecs.push_back(std::move(v));
  }

  // f32 reference rankings (scalar kernels: the contract family).
  const QuantizedTensor ref_catalog = quantize(catalog_f32, DType::kF32);
  const CatalogScorer reference(ref_catalog, scalar_kernels());
  std::vector<std::vector<ScoredId>> ref_topk;
  ref_topk.reserve(query_vecs.size());
  for (const auto& q : query_vecs) {
    ref_topk.push_back(reference.top_k(q.data(), k));
  }

  struct Rung {
    const char* label;
    DType dtype;
    Index group_size;
  };
  const std::vector<Rung> rungs = {
      {"f32", DType::kF32, 0},  {"f16", DType::kF16, 0},
      {"i8", DType::kI8, 0},    {"i4", DType::kI4, 0},
      {"i4g", DType::kI4G, kI4GroupDefault},
  };

  TextTable table({"dtype", "recall@k", "scan p50 ms", "scan p95 ms",
                   "mean ms", "catalog MB", "vs f32"});
  std::vector<RungResult> results;
  std::vector<PrunedResult> pruned_results;
  std::size_t f32_bytes = 0;
  for (const Rung& rung : rungs) {
    const QuantizedTensor q = quantize(catalog_f32, rung.dtype,
                                       rung.group_size);
    const CatalogScorer scorer(q, select_kernels());
    RungResult result;
    result.dtype = rung.label;
    result.resident_bytes = scorer.resident_bytes();
    if (rung.dtype == DType::kF32) {
      f32_bytes = result.resident_bytes;
    }
    result.bytes_ratio_vs_f32 =
        f32_bytes > 0 ? static_cast<double>(result.resident_bytes) /
                            static_cast<double>(f32_bytes)
                      : 1.0;

    // Warm pass (page the catalog in), then the measured per-query scans.
    // The rung's exact top-k lists double as the pruned phase's reference.
    (void)scorer.top_k(query_vecs.front().data(), k);
    std::vector<double> samples;
    samples.reserve(query_vecs.size());
    double recall_sum = 0;
    std::vector<std::vector<ScoredId>> rung_topk;
    rung_topk.reserve(query_vecs.size());
    for (std::size_t i = 0; i < query_vecs.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      std::vector<ScoredId> top = scorer.top_k(query_vecs[i].data(), k);
      samples.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count());
      recall_sum += intersection_recall(top, ref_topk[i]);
      rung_topk.push_back(std::move(top));
    }
    result.scan = latency_stats_from_samples(std::move(samples));
    result.recall_at_k = recall_sum / static_cast<double>(query_vecs.size());
    results.push_back(result);

    table.add_row({result.dtype, format_float(result.recall_at_k, 4),
                   format_float(result.scan.p50_ms, 4),
                   format_float(result.scan.p95_ms, 4),
                   format_float(result.scan.mean_ms, 4),
                   format_float(static_cast<double>(result.resident_bytes) /
                                    (1024.0 * 1024.0),
                                3),
                   format_float(result.bytes_ratio_vs_f32, 3)});

    // Pruned frontier for this rung: one deterministic index over the
    // rung's own compressed rows, probed at a geometric nprobe sweep.
    CatalogIndexConfig index_config;
    index_config.clusters = std::min(clusters, items);
    const CatalogIndex index = build_catalog_index(q, index_config);
    const PrunedCatalogScorer pruned_scorer(scorer, index);
    std::vector<Index> sweep;
    for (const Index np :
         {Index{1}, index.clusters / 64, index.clusters / 32,
          index.clusters / 16, index.clusters / 8, index.clusters * 3 / 16,
          index.clusters / 4, index.clusters / 2, index.clusters}) {
      if (np >= 1 && (sweep.empty() || np > sweep.back())) {
        sweep.push_back(np);
      }
    }
    for (const Index np : sweep) {
      (void)pruned_scorer.top_k(query_vecs.front().data(), k, np);
      PrunedResult point;
      point.dtype = rung.label;
      point.clusters = index.clusters;
      point.nprobe = np;
      std::vector<double> pruned_samples;
      pruned_samples.reserve(query_vecs.size());
      double pruned_recall_sum = 0;
      std::uint64_t bytes_sum = 0;
      for (std::size_t i = 0; i < query_vecs.size(); ++i) {
        ScanStats stats;
        const auto start = std::chrono::steady_clock::now();
        const std::vector<ScoredId> top =
            pruned_scorer.top_k(query_vecs[i].data(), k, np, &stats);
        pruned_samples.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count());
        pruned_recall_sum += intersection_recall(top, rung_topk[i]);
        bytes_sum += stats.scanned_bytes;
      }
      point.scan = latency_stats_from_samples(std::move(pruned_samples));
      point.recall_at_k =
          pruned_recall_sum / static_cast<double>(query_vecs.size());
      point.mean_scanned_bytes = static_cast<double>(bytes_sum) /
                                 static_cast<double>(query_vecs.size());
      point.bytes_fraction =
          point.mean_scanned_bytes /
          static_cast<double>(result.resident_bytes);
      pruned_results.push_back(point);
    }
  }

  std::cout << table.to_string();

  TextTable pruned_table({"dtype", "nprobe", "recall@k", "scan p50 ms",
                          "mean ms", "scan KB/query", "% of catalog"});
  for (const PrunedResult& p : pruned_results) {
    pruned_table.add_row(
        {p.dtype, std::to_string(p.nprobe), format_float(p.recall_at_k, 4),
         format_float(p.scan.p50_ms, 4), format_float(p.scan.mean_ms, 4),
         format_float(p.mean_scanned_bytes / 1024.0, 1),
         format_float(p.bytes_fraction * 100.0, 1)});
  }
  std::cout << "\nclustered pruned scan (" << clusters
            << " clusters, recall vs same-rung exact scan):\n"
            << pruned_table.to_string();

  std::ofstream out(json_path, std::ios::trunc);
  out << "{\n  \"items\": " << items << ",\n  \"dim\": " << dim
      << ",\n  \"queries\": " << queries << ",\n  \"k\": " << k
      << ",\n  \"clusters\": " << clusters << ",\n  \"kernels\": \""
      << select_kernels().name << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RungResult& r = results[i];
    out << "    {\"dtype\": \"" << r.dtype << "\", "
        << "\"recall_at_k\": " << r.recall_at_k << ", "
        << "\"scan_p50_ms\": " << r.scan.p50_ms << ", "
        << "\"scan_p95_ms\": " << r.scan.p95_ms << ", "
        << "\"scan_mean_ms\": " << r.scan.mean_ms << ", "
        << "\"catalog_bytes\": " << r.resident_bytes << ", "
        << "\"bytes_ratio_vs_f32\": " << r.bytes_ratio_vs_f32 << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pruned\": [\n";
  for (std::size_t i = 0; i < pruned_results.size(); ++i) {
    const PrunedResult& p = pruned_results[i];
    out << "    {\"dtype\": \"" << p.dtype << "\", "
        << "\"clusters\": " << p.clusters << ", "
        << "\"nprobe\": " << p.nprobe << ", "
        << "\"recall_at_k\": " << p.recall_at_k << ", "
        << "\"scan_p50_ms\": " << p.scan.p50_ms << ", "
        << "\"scan_mean_ms\": " << p.scan.mean_ms << ", "
        << "\"mean_scanned_bytes\": " << p.mean_scanned_bytes << ", "
        << "\"bytes_fraction\": " << p.bytes_fraction << "}"
        << (i + 1 < pruned_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
