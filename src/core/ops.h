// Tensor operations used by the NN layers and inference engine.
//
// All matmuls are plain blocked loops; the models in this reproduction are
// small MLPs so these are never the bottleneck relative to data generation
// and the experiment sweeps.
#pragma once

#include "core/tensor.h"

namespace memcom {

// out = a([m,k]) * b([k,n]). Allocates the result.
Tensor matmul(const Tensor& a, const Tensor& b);
// out += a * b. `out` must already be [m,n].
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);
// out = a^T([k,m]^T -> [m,k]) * b([k? ...]). Specifically:
//   matmul_tn: out[m,n] = a[k,m]^T * b[k,n]   (used for weight gradients)
//   matmul_nt: out[m,k] = a[m,n] * b[k,n]^T   (used for input gradients)
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);  // 2-D only.

// Row-wise: x[r, :] += bias[:]. x is [rows, cols], bias is [cols].
void add_row_bias(Tensor& x, const Tensor& bias);
// bias_grad[c] = sum_r grad[r, c].
Tensor column_sums(const Tensor& grad);

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// Numerically stable row-wise softmax of a [rows, cols] tensor.
Tensor softmax_rows(const Tensor& logits);
// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);

// Stable log(sum(exp(row))) per row; returns a [rows] tensor.
Tensor logsumexp_rows(const Tensor& logits);

float sigmoid(float x);

// Sum over the middle axis of a [B, L, E] tensor with a per-(b,l) weight
// (used by mask-aware average pooling): out[b,e] = sum_l w[b,l] * x[b,l,e].
Tensor weighted_sum_middle(const Tensor& x, const Tensor& weights);

}  // namespace memcom
