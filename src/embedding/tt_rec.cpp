#include "embedding/tt_rec.h"

#include <cmath>

namespace memcom {

std::pair<Index, Index> TtRecEmbedding::balanced_factors(Index n) {
  check(n > 0, "tt_rec: non-positive factor target");
  const Index root = static_cast<Index>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  return {root, (n + root - 1) / root};
}

TtRecEmbedding::TtRecEmbedding(Index vocab, Index rank, Index embed_dim,
                               Rng& rng)
    : vocab_(vocab), rank_(rank) {
  check(rank > 0, "tt_rec: rank must be positive");
  const auto [v1, v2] = balanced_factors(vocab);
  v1_ = v1;
  v2_ = v2;
  const auto [e1, e2] = balanced_factors(embed_dim);
  e1_ = e1;
  e2_ = e2;
  // Initialize so products land at embedding_init's scale: each factor at
  // sqrt(0.05 / r) keeps sum_r products ~ U(-0.05, 0.05) magnitude.
  const float scale =
      std::sqrt(0.05f / static_cast<float>(rank));
  core1_ = Param("tt_rec.core1",
                 Tensor::uniform({v1_, e1_ * rank_}, rng, -scale, scale));
  core2_ = Param("tt_rec.core2",
                 Tensor::uniform({v2_, rank_ * e2_}, rng, -scale, scale));
  core1_.sparse = true;
  core2_.sparse = true;
}

Index TtRecEmbedding::param_formula(Index vocab, Index rank, Index embed_dim) {
  const Index root_v = static_cast<Index>(
      std::ceil(std::sqrt(static_cast<double>(vocab))));
  const Index v1 = root_v;
  const Index v2 = (vocab + root_v - 1) / root_v;
  const Index root_e = static_cast<Index>(
      std::ceil(std::sqrt(static_cast<double>(embed_dim))));
  const Index e1 = root_e;
  const Index e2 = (embed_dim + root_e - 1) / root_e;
  return v1 * e1 * rank + v2 * rank * e2;
}

Tensor TtRecEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index e = output_dim();
  Tensor out({input.batch, input.length, e});
  const float* c1 = core1_.value.data();
  const float* c2 = core2_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const Index i1 = static_cast<Index>(id) / v2_;
    const Index i2 = static_cast<Index>(id) % v2_;
    const float* g1 = c1 + i1 * e1_ * rank_;  // [e1, r]
    const float* g2 = c2 + i2 * rank_ * e2_;  // [r, e2]
    float* dst = o + i * e;
    for (Index a = 0; a < e1_; ++a) {
      for (Index b = 0; b < e2_; ++b) {
        double acc = 0.0;
        for (Index r = 0; r < rank_; ++r) {
          acc += static_cast<double>(g1[a * rank_ + r]) * g2[r * e2_ + b];
        }
        dst[a * e2_ + b] = static_cast<float>(acc);
      }
    }
  }
  return out;
}

void TtRecEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "tt_rec: bad grad shape");
  const Index e = output_dim();
  const float* g = grad_out.data();
  const float* c1 = core1_.value.data();
  const float* c2 = core2_.value.data();
  float* gc1 = core1_.grad.data();
  float* gc2 = core2_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const Index i1 = static_cast<Index>(id) / v2_;
    const Index i2 = static_cast<Index>(id) % v2_;
    core1_.mark_touched(i1);
    core2_.mark_touched(i2);
    const float* g1 = c1 + i1 * e1_ * rank_;
    const float* g2 = c2 + i2 * rank_ * e2_;
    float* dst1 = gc1 + i1 * e1_ * rank_;
    float* dst2 = gc2 + i2 * rank_ * e2_;
    const float* src = g + i * e;
    // dG1[a, r] += sum_b src[a*e2+b] * G2[r, b]
    // dG2[r, b] += sum_a src[a*e2+b] * G1[a, r]
    for (Index a = 0; a < e1_; ++a) {
      for (Index r = 0; r < rank_; ++r) {
        double acc = 0.0;
        const float g1ar = g1[a * rank_ + r];
        for (Index b = 0; b < e2_; ++b) {
          const float s = src[a * e2_ + b];
          acc += static_cast<double>(s) * g2[r * e2_ + b];
          dst2[r * e2_ + b] += s * g1ar;
        }
        dst1[a * rank_ + r] += static_cast<float>(acc);
      }
    }
  }
}

}  // namespace memcom
