#include "repro/model.h"

#include "core/ops.h"
#include "embedding/memcom.h"
#include "nn/loss.h"
#include "ondevice/format.h"

namespace memcom {

RecModel::RecModel(const ModelConfig& config) : config_(config) {
  check(config.output_vocab > 1, "RecModel: output vocab must exceed 1");
  Rng rng(config.seed);
  Rng emb_rng = rng.split(1);
  embedding_ = make_embedding(config.embedding, emb_rng);
  const Index e = embedding_->output_dim();
  dropout1_ = std::make_unique<Dropout>(config.dropout, rng);
  bn1_ = std::make_unique<BatchNorm1d>(e);
  if (config.arch == ModelArch::kClassification) {
    const Index hidden = std::max<Index>(2, e / 2);
    dense1_ = std::make_unique<Dense>(e, hidden, rng, "dense1");
    dropout2_ = std::make_unique<Dropout>(config.dropout, rng);
    bn2_ = std::make_unique<BatchNorm1d>(hidden);
    out_ = std::make_unique<Dense>(hidden, config.output_vocab, rng, "out");
  } else {
    out_ = std::make_unique<Dense>(e, config.output_vocab, rng, "out");
  }
}

Tensor RecModel::forward(const IdBatch& input, bool training) {
  cached_input_ = input;
  const Tensor embedded = embedding_->forward(input, training);
  const Tensor mask =
      mask_from_ids(input.ids, input.batch, input.length, kPadId);
  Tensor x = pool_.forward(embedded, mask);
  x = relu1_.forward(x, training);
  x = dropout1_->forward(x, training);
  x = bn1_->forward(x, training);
  if (config_.arch == ModelArch::kClassification) {
    x = dense1_->forward(x, training);
    x = relu2_.forward(x, training);
    x = dropout2_->forward(x, training);
    x = bn2_->forward(x, training);
  }
  return out_->forward(x, training);
}

void RecModel::backward(const Tensor& grad_logits) {
  Tensor g = out_->backward(grad_logits);
  if (config_.arch == ModelArch::kClassification) {
    g = bn2_->backward(g);
    g = dropout2_->backward(g);
    g = relu2_.backward(g);
    g = dense1_->backward(g);
  }
  g = bn1_->backward(g);
  g = dropout1_->backward(g);
  g = relu1_.backward(g);
  const Tensor grad_embedded = pool_.backward(g);
  embedding_->backward(grad_embedded);
}

ParamRefs RecModel::params() {
  ParamRefs refs = embedding_->params();
  for (Param* p : bn1_->params()) {
    refs.push_back(p);
  }
  if (config_.arch == ModelArch::kClassification) {
    for (Param* p : dense1_->params()) {
      refs.push_back(p);
    }
    for (Param* p : bn2_->params()) {
      refs.push_back(p);
    }
  }
  for (Param* p : out_->params()) {
    refs.push_back(p);
  }
  return refs;
}

Index RecModel::param_count() { return total_param_count(params()); }

std::vector<std::pair<std::string, Tensor*>> RecModel::named_tensors() {
  std::vector<std::pair<std::string, Tensor*>> named;
  // Embedding tensors, named per technique (see ondevice/engine.cpp).
  const std::string technique = technique_name(config_.embedding.kind);
  const ParamRefs emb_params = embedding_->params();
  if (technique == "memcom" || technique == "memcom_bias") {
    named.emplace_back("emb.shared", &emb_params[0]->value);
    named.emplace_back("emb.multiplier", &emb_params[1]->value);
    if (technique == "memcom_bias") {
      named.emplace_back("emb.bias", &emb_params[2]->value);
    }
  } else if (technique == "qr_mult" || technique == "qr_concat") {
    named.emplace_back("emb.remainder", &emb_params[0]->value);
    named.emplace_back("emb.quotient", &emb_params[1]->value);
  } else if (technique == "double_hash") {
    named.emplace_back("emb.table_a", &emb_params[0]->value);
    named.emplace_back("emb.table_b", &emb_params[1]->value);
  } else if (technique == "factorized") {
    named.emplace_back("emb.factors", &emb_params[0]->value);
    named.emplace_back("emb.projection", &emb_params[1]->value);
  } else if (technique == "tt_rec") {
    named.emplace_back("emb.core1", &emb_params[0]->value);
    named.emplace_back("emb.core2", &emb_params[1]->value);
  } else if (technique == "mixed_dim" || technique == "hashed_nets") {
    // Variable-count parameter sets: enumerate positionally. (The on-device
    // engine's lookup dispatch does not cover these; export/load round
    // trips do.)
    for (std::size_t i = 0; i < emb_params.size(); ++i) {
      named.emplace_back("emb.p" + std::to_string(i), &emb_params[i]->value);
    }
  } else {
    // uncompressed / reduce_dim / naive_hash / truncate_rare / weinberger:
    // single table.
    named.emplace_back("emb.table", &emb_params[0]->value);
  }

  auto add_bn = [&](const char* prefix, BatchNorm1d& bn) {
    const std::string p(prefix);
    named.emplace_back(p + ".gamma", &bn.params()[0]->value);
    named.emplace_back(p + ".beta", &bn.params()[1]->value);
    named.emplace_back(p + ".mean", &bn.running_mean());
    named.emplace_back(p + ".var", &bn.running_var());
  };
  auto add_dense = [&](const char* prefix, Dense& dense) {
    const std::string p(prefix);
    named.emplace_back(p + ".weight", &dense.weight().value);
    named.emplace_back(p + ".bias", &dense.bias().value);
  };
  add_bn("bn1", *bn1_);
  if (config_.arch == ModelArch::kClassification) {
    add_dense("dense1", *dense1_);
    add_bn("bn2", *bn2_);
  }
  add_dense("out", *out_);
  return named;
}

void RecModel::export_mcm(const std::string& path, DType dtype,
                          const std::string& model_name,
                          std::uint64_t model_version, Index group_size,
                          bool emit_plan, bool emit_index,
                          Index index_clusters) {
  ModelWriter writer(path);
  writer.set_emit_plan(emit_plan);
  writer.set_emit_catalog_index(emit_index, index_clusters);
  if (!model_name.empty()) {
    writer.set_model_identity(model_name, model_version);
  }
  writer.set_metadata("arch", config_.arch == ModelArch::kClassification
                                  ? "classification"
                                  : "ranking");
  writer.set_metadata("technique", technique_name(config_.embedding.kind));
  writer.set_metadata_int("vocab", config_.embedding.vocab);
  writer.set_metadata_int("embed_dim", embedding_->output_dim());
  writer.set_metadata_int("knob", config_.embedding.knob);
  writer.set_metadata_int("output_dim", config_.output_vocab);
  if (dense1_ != nullptr) {
    writer.set_metadata_int("hidden_dim", dense1_->out_features());
  }
  for (const auto& [name, tensor] : named_tensors()) {
    writer.add_tensor(name, *tensor, dtype, group_size);
  }
  writer.finish();
}

void RecModel::load_mcm(const std::string& path) {
  const MmapModel mapped(path);
  check(mapped.metadata_value("technique") ==
            technique_name(config_.embedding.kind),
        "load_mcm: technique mismatch");
  check_eq(config_.output_vocab, mapped.metadata_int("output_dim"),
           "load_mcm output vocab");
  for (const auto& [name, tensor] : named_tensors()) {
    Tensor loaded = mapped.load_tensor(name);
    check(loaded.shape() == tensor->shape(),
          "load_mcm: shape mismatch for " + name);
    *tensor = std::move(loaded);
  }
}

PairwiseRankModel::PairwiseRankModel(const EmbeddingConfig& embedding_config,
                                     Index item_count, double dropout,
                                     std::uint64_t seed) {
  check(item_count > 1, "PairwiseRankModel: need at least 2 items");
  Rng rng(seed);
  Rng emb_rng = rng.split(1);
  embedding_ = make_embedding(embedding_config, emb_rng);
  const Index e = embedding_->output_dim();
  dropout1_ = std::make_unique<Dropout>(dropout, rng);
  bn1_ = std::make_unique<BatchNorm1d>(e);
  proj_ = std::make_unique<Dense>(e, e, rng, "proj");
  Rng item_rng = rng.split(2);
  item_table_ = Param("item.table", embedding_init(item_count, e, item_rng));
  item_table_.sparse = true;
  item_bias_ = Param("item.bias", Tensor({item_count}));
  item_bias_.sparse = false;
}

Tensor PairwiseRankModel::user_tower_forward(const IdBatch& histories,
                                             bool training) {
  const Tensor embedded = embedding_->forward(histories, training);
  const Tensor mask =
      mask_from_ids(histories.ids, histories.batch, histories.length, kPadId);
  Tensor x = pool_.forward(embedded, mask);
  x = relu1_.forward(x, training);
  x = dropout1_->forward(x, training);
  x = bn1_->forward(x, training);
  return proj_->forward(x, training);
}

void PairwiseRankModel::user_tower_backward(const Tensor& grad_user) {
  Tensor g = proj_->backward(grad_user);
  g = bn1_->backward(g);
  g = dropout1_->backward(g);
  g = relu1_.backward(g);
  const Tensor grad_embedded = pool_.backward(g);
  embedding_->backward(grad_embedded);
}

Tensor PairwiseRankModel::score(const IdBatch& histories,
                                const std::vector<Index>& items,
                                bool training) {
  check_eq(histories.batch, static_cast<long long>(items.size()),
           "pairwise: batch vs items");
  cached_user_ = user_tower_forward(histories, training);
  cached_items_ = items;
  const Index b = histories.batch;
  const Index e = cached_user_.dim(1);
  Tensor scores({b});
  for (Index r = 0; r < b; ++r) {
    const Index item = items[static_cast<std::size_t>(r)];
    check(item >= 0 && item < item_table_.value.dim(0),
          "pairwise: item out of range");
    const float* u = cached_user_.data() + r * e;
    const float* it = item_table_.value.data() + item * e;
    double acc = item_bias_.value[item];
    for (Index c = 0; c < e; ++c) {
      acc += static_cast<double>(u[c]) * it[c];
    }
    scores[r] = static_cast<float>(acc);
  }
  return scores;
}

Tensor PairwiseRankModel::score_all(const IdBatch& single_history) {
  const Tensor user = user_tower_forward(single_history, /*training=*/false);
  check_eq(1, user.dim(0), "score_all expects a single history");
  const Index items = item_table_.value.dim(0);
  const Index e = user.dim(1);
  Tensor scores({1, items});
  const float* u = user.data();
  for (Index i = 0; i < items; ++i) {
    const float* it = item_table_.value.data() + i * e;
    double acc = item_bias_.value[i];
    for (Index c = 0; c < e; ++c) {
      acc += static_cast<double>(u[c]) * it[c];
    }
    scores.at2(0, i) = static_cast<float>(acc);
  }
  return scores;
}

void PairwiseRankModel::backward(const std::vector<Index>& items,
                                 const Tensor& grad_scores) {
  check(!cached_user_.empty(), "pairwise: backward before score");
  check_eq(static_cast<long long>(cached_items_.size()),
           static_cast<long long>(items.size()), "pairwise: item mismatch");
  const Index b = cached_user_.dim(0);
  const Index e = cached_user_.dim(1);
  check(grad_scores.ndim() == 1 && grad_scores.dim(0) == b,
        "pairwise: bad grad shape");
  Tensor grad_user({b, e});
  for (Index r = 0; r < b; ++r) {
    const Index item = items[static_cast<std::size_t>(r)];
    const float g = grad_scores[r];
    const float* u = cached_user_.data() + r * e;
    const float* it = item_table_.value.data() + item * e;
    float* gu = grad_user.data() + r * e;
    float* git = item_table_.grad.data() + item * e;
    for (Index c = 0; c < e; ++c) {
      gu[c] = g * it[c];
      git[c] += g * u[c];
    }
    item_table_.mark_touched(item);
    item_bias_.grad[item] += g;
  }
  user_tower_backward(grad_user);
}

float PairwiseRankModel::train_pair_batch(const IdBatch& histories,
                                          const std::vector<Index>& preferred,
                                          const std::vector<Index>& other,
                                          float* accuracy_out) {
  const Index b = histories.batch;
  check_eq(b, static_cast<long long>(preferred.size()), "pairwise batch");
  check_eq(b, static_cast<long long>(other.size()), "pairwise batch");
  // Stack the two arms into one 2B batch so every layer runs exactly one
  // forward (layer caches stay valid for the single backward).
  IdBatch stacked(2 * b, histories.length);
  for (Index r = 0; r < b; ++r) {
    for (Index l = 0; l < histories.length; ++l) {
      stacked.id(r, l) = histories.id(r, l);
      stacked.id(b + r, l) = histories.id(r, l);
    }
  }
  std::vector<Index> stacked_items(static_cast<std::size_t>(2 * b));
  for (Index r = 0; r < b; ++r) {
    stacked_items[static_cast<std::size_t>(r)] =
        preferred[static_cast<std::size_t>(r)];
    stacked_items[static_cast<std::size_t>(b + r)] =
        other[static_cast<std::size_t>(r)];
  }
  const Tensor scores = score(stacked, stacked_items, /*training=*/true);
  Tensor score_pref({b});
  Tensor score_other({b});
  for (Index r = 0; r < b; ++r) {
    score_pref[r] = scores[r];
    score_other[r] = scores[b + r];
  }
  RankNetLoss loss;
  const float value = loss.forward(score_pref, score_other);
  if (accuracy_out != nullptr) {
    *accuracy_out = loss.pairwise_accuracy();
  }
  const Tensor g_pref = loss.backward_preferred();
  const Tensor g_other = loss.backward_other();
  Tensor grad_scores({2 * b});
  for (Index r = 0; r < b; ++r) {
    grad_scores[r] = g_pref[r];
    grad_scores[b + r] = g_other[r];
  }
  backward(stacked_items, grad_scores);
  return value;
}

ParamRefs PairwiseRankModel::params() {
  ParamRefs refs = embedding_->params();
  for (Param* p : bn1_->params()) {
    refs.push_back(p);
  }
  for (Param* p : proj_->params()) {
    refs.push_back(p);
  }
  refs.push_back(&item_table_);
  refs.push_back(&item_bias_);
  return refs;
}

Index PairwiseRankModel::param_count() { return total_param_count(params()); }

}  // namespace memcom
