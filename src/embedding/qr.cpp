#include "embedding/qr.h"

#include "embedding/hashing.h"

namespace memcom {

namespace {
Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }
}  // namespace

QrEmbedding::QrEmbedding(Index vocab, Index hash_size, Index embed_dim,
                         Rng& rng, QrComposition composition)
    : vocab_(vocab), composition_(composition) {
  check(hash_size > 0 && hash_size <= vocab,
        "qr: hash size must be in (0, vocab]");
  const Index width =
      composition == QrComposition::kConcat ? embed_dim / 2 : embed_dim;
  if (composition == QrComposition::kConcat) {
    check(embed_dim % 2 == 0, "qr_concat: embed_dim must be even");
  }
  const Index q_rows = ceil_div(vocab, hash_size);
  remainder_ = Param("qr.remainder", embedding_init(hash_size, width, rng));
  if (composition == QrComposition::kMultiply) {
    // Multiplicative composition: initialize the quotient table around 1 so
    // products start at the remainder table's scale (a quotient table drawn
    // near zero would make all products vanish and stall training).
    Tensor q = Tensor::randn({q_rows, width}, rng, 0.05f);
    for (Index i = 0; i < q.numel(); ++i) {
      q[i] += 1.0f;
    }
    quotient_ = Param("qr.quotient", std::move(q));
  } else {
    quotient_ = Param("qr.quotient", embedding_init(q_rows, width, rng));
  }
  remainder_.sparse = true;
  quotient_.sparse = true;
}

Index QrEmbedding::output_dim() const {
  return composition_ == QrComposition::kConcat
             ? 2 * remainder_.value.dim(1)
             : remainder_.value.dim(1);
}

Tensor QrEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index width = remainder_.value.dim(1);
  const Index m = hash_size();
  Tensor out({input.batch, input.length, output_dim()});
  const float* rem = remainder_.value.data();
  const float* quo = quotient_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const Index k = static_cast<Index>(id) / m;
    const float* row_r = rem + j * width;
    const float* row_q = quo + k * width;
    if (composition_ == QrComposition::kMultiply) {
      float* dst = o + i * width;
      for (Index c = 0; c < width; ++c) {
        dst[c] = row_r[c] * row_q[c];
      }
    } else {
      float* dst = o + i * 2 * width;
      for (Index c = 0; c < width; ++c) {
        dst[c] = row_r[c];
        dst[width + c] = row_q[c];
      }
    }
  }
  return out;
}

void QrEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "qr: bad grad shape");
  const Index width = remainder_.value.dim(1);
  const Index m = hash_size();
  const float* g = grad_out.data();
  const float* rem = remainder_.value.data();
  const float* quo = quotient_.value.data();
  float* g_rem = remainder_.grad.data();
  float* g_quo = quotient_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const Index k = static_cast<Index>(id) / m;
    remainder_.mark_touched(j);
    quotient_.mark_touched(k);
    if (composition_ == QrComposition::kMultiply) {
      const float* src = g + i * width;
      const float* row_r = rem + j * width;
      const float* row_q = quo + k * width;
      float* dst_r = g_rem + j * width;
      float* dst_q = g_quo + k * width;
      for (Index c = 0; c < width; ++c) {
        dst_r[c] += src[c] * row_q[c];
        dst_q[c] += src[c] * row_r[c];
      }
    } else {
      const float* src = g + i * 2 * width;
      float* dst_r = g_rem + j * width;
      float* dst_q = g_quo + k * width;
      for (Index c = 0; c < width; ++c) {
        dst_r[c] += src[c];
        dst_q[c] += src[width + c];
      }
    }
  }
}

}  // namespace memcom
